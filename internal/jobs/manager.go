package jobs

// Manager is the job server's core: admission control in front of
// bounded per-tenant queues, a runner fleet (runner.go), and the drain /
// crash-recovery choreography. Locking discipline: Manager.mu orders
// before job.mu (a path holding job.mu must never take Manager.mu);
// spool writes happen under job.mu only, so per-job persistence never
// serializes unrelated tenants — except admission itself, which holds
// Manager.mu across the job-directory creation on purpose: admissions
// are ordered and crash-consistent, and their cost is dominated by the
// tensor copy a client already paid to upload.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/symprop/symprop/internal/faultinject"
	"github.com/symprop/symprop/internal/kernels"
	"github.com/symprop/symprop/internal/memguard"
	"github.com/symprop/symprop/internal/obs"
	"github.com/symprop/symprop/internal/spsym"
)

// Config sizes the Manager. The zero value of every field is usable:
// Open applies the defaults documented per field.
type Config struct {
	// SpoolDir is the server-owned job directory (required).
	SpoolDir string
	// Runners is the number of concurrently running jobs (default 2).
	Runners int
	// JobWorkers is the per-job kernel parallelism a job gets when its
	// spec leaves Workers at 0 (default 2). Each runner owns one
	// exec.Pool of this size, reused across every job it runs.
	JobWorkers int
	// MemoryBudget bounds the server-wide simulated memory shared by
	// admission reservations and kernel reservations, with the
	// symprop.Options semantics: 0 reads SYMPROP_MEM_BUDGET (default
	// 2 GiB), negative disables the budget.
	MemoryBudget int64
	// MaxQueuedPerTenant bounds one tenant's queue (default 8).
	MaxQueuedPerTenant int
	// MaxQueued bounds the whole queue across tenants (default 64).
	MaxQueued int
	// QueueTTL expires jobs that wait in the queue longer than this
	// without ever starting (default 10m; negative disables expiry).
	QueueTTL time.Duration
	// RetryAfter is the client backoff hint attached to saturation and
	// drain rejections (default 5s).
	RetryAfter time.Duration
	// Retry paces the per-job retry loop.
	Retry RetryPolicy
	// Metrics, when non-nil, is the per-plan collector every job's
	// kernel plans record into; nil uses a private one.
	Metrics *obs.Metrics
	// Counters, when non-nil, receives the control-plane counters; nil
	// uses a private set. Exposed via Counters().
	Counters *obs.Counters
	// Logf, when non-nil, receives one line per server-side incident
	// (spool skips, retries, drain); nil discards.
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	if c.SpoolDir == "" {
		return fmt.Errorf("jobs: Config.SpoolDir is required")
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.QueueTTL == 0 {
		c.QueueTTL = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.New()
	}
	if c.Counters == nil {
		c.Counters = obs.NewCounters()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Retry.normalize()
	return nil
}

func (c *Config) guard() *memguard.Guard {
	switch {
	case c.MemoryBudget < 0:
		return nil
	case c.MemoryBudget == 0:
		return memguard.FromEnv()
	default:
		return memguard.New(c.MemoryBudget)
	}
}

// job is the in-memory twin of a spooled manifest.
type job struct {
	mu  sync.Mutex
	man Manifest
	// x is the job's tensor, loaded at admission (or rescan) and dropped
	// when the job reaches a terminal state.
	x *spsym.Tensor
	// reserved is the admission guard reservation held while the job is
	// queued; released when the job starts (kernel reservations take
	// over) or reaches a terminal state without running.
	reserved int64
	// cancel is non-nil while a runner executes the job.
	cancel context.CancelCauseFunc
	// subs are the live event subscribers (SSE clients).
	subs    map[int]chan Event
	nextSub int
}

// Manager owns the spool, the queues, and the runner fleet.
type Manager struct {
	cfg      Config
	spool    *Spool
	guard    *memguard.Guard
	counters *obs.Counters

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	queues   map[string][]*job
	tenants  []string // round-robin order over tenants with queued work
	rrNext   int
	queued   int
	running  int
	draining bool
	closed   bool

	rootCtx    context.Context
	rootCancel context.CancelCauseFunc
	wg         sync.WaitGroup
}

// Open builds a Manager over cfg.SpoolDir, rescans the spool — requeuing
// every job that was queued or running when the previous process died —
// and starts the runner fleet.
func Open(cfg Config) (*Manager, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	spool, err := OpenSpool(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	m := &Manager{
		cfg:        cfg,
		spool:      spool,
		guard:      cfg.guard(),
		counters:   cfg.Counters,
		jobs:       make(map[string]*job),
		queues:     make(map[string][]*job),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.rescan(); err != nil {
		cancel(nil)
		return nil, err
	}
	m.wg.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go m.runner(i)
	}
	return m, nil
}

// rescan is Open's crash-recovery pass: load every manifest, keep
// terminal jobs for status queries, requeue live ones for resume.
func (m *Manager) rescan() error {
	mans, issues, err := m.spool.Rescan()
	if err != nil {
		return err
	}
	for _, is := range issues {
		m.counters.Add("jobs.spool_skipped", 1)
		m.cfg.Logf("jobs: spool rescan skipped %s: %v", is.Path, is.Err)
	}
	for _, man := range mans {
		j := &job{man: *man, subs: make(map[int]chan Event)}
		if man.State.Terminal() {
			m.jobs[man.ID] = j
			continue
		}
		// Queued or Running at crash time: both resume as Queued. The
		// checkpoint (if any) carries the completed sweeps.
		x, err := m.spool.LoadTensor(man.ID)
		if err != nil {
			j.man.State = StateFailed
			j.man.Error = fmt.Sprintf("spool tensor unreadable after restart: %v", err)
			j.man.FinishedAt = time.Now()
			if serr := m.spool.SaveManifest(&j.man); serr != nil {
				m.cfg.Logf("jobs: persist failed manifest %s: %v", man.ID, serr)
			}
			m.counters.Add("jobs.failed", 1)
			m.jobs[man.ID] = j
			continue
		}
		j.x = x
		if j.man.State != StateQueued {
			j.man.State = StateQueued
			if err := m.spool.SaveManifest(&j.man); err != nil {
				return fmt.Errorf("jobs: requeue %s: %w", man.ID, err)
			}
		}
		// Re-establish the admission reservation best-effort: a smaller
		// budget on restart must not strand spooled work, so a rejection
		// leaves the job queued with no reservation (the run itself still
		// enforces the budget).
		est := estimateBytes(x, j.man.Spec.Rank, j.man.Workers)
		if err := m.guard.Reserve(est, "job "+man.ID+" readmission"); err == nil {
			j.reserved = est
		} else {
			m.cfg.Logf("jobs: %s readmitted without reservation: %v", man.ID, err)
		}
		m.jobs[man.ID] = j
		m.enqueueLocked(j)
		m.counters.Add("jobs.resumed", 1)
	}
	return nil
}

// estimateBytes models a job's peak kernel footprint for admission: the
// S³TTMc workspaces plus the factor and compact core that stay resident
// across sweeps.
func estimateBytes(x *spsym.Tensor, rank, workers int) int64 {
	est := kernels.EstimateSymPropBytes(x, rank, workers)
	factor := memguard.Float64Bytes(int64(x.Dim) * int64(rank))
	if est+factor < est {
		return est
	}
	return est + factor
}

// Submit admits one job: fault site, validation, tensor load, guard
// reservation, queue bounds, durable spool write, enqueue — in that
// order, so every rejection happens before anything is persisted.
func (m *Manager) Submit(spec Spec) (string, error) {
	if m.isDraining() {
		m.counters.Add("jobs.rejected.draining", 1)
		return "", ErrDraining
	}
	if err := faultinject.Fire(faultinject.SiteJobAdmit, &spec); err != nil {
		m.counters.Add("jobs.admit_faults", 1)
		return "", fmt.Errorf("%w: admission fault injected: %v", ErrSaturated, err)
	}
	if err := spec.validate(); err != nil {
		return "", err
	}
	x, err := loadSpecTensor(&spec)
	if err != nil {
		return "", err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = m.cfg.JobWorkers
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	est := estimateBytes(x, spec.Rank, workers)
	if err := m.guard.Reserve(est, "job admission"); err != nil {
		m.counters.Add("jobs.rejected.saturated", 1)
		return "", fmt.Errorf("%w: %w", ErrSaturated, err)
	}

	id := NewJobID()
	j := &job{
		man: Manifest{
			ID:         id,
			Spec:       spec,
			State:      StateQueued,
			Workers:    workers,
			Shards:     shards,
			EnqueuedAt: time.Now(),
		},
		x:        x,
		reserved: est,
		subs:     make(map[int]chan Event),
	}
	// The spooled tensor is the job's source of truth from here on; the
	// inline copy would only bloat every manifest rewrite.
	j.man.Spec.Tensor = ""

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.closed {
		m.guard.Release(est)
		m.counters.Add("jobs.rejected.draining", 1)
		return "", ErrDraining
	}
	tenant := spec.tenant()
	if len(m.queues[tenant]) >= m.cfg.MaxQueuedPerTenant {
		m.guard.Release(est)
		m.counters.Add("jobs.rejected.saturated", 1)
		return "", fmt.Errorf("%w: tenant %q has %d jobs queued (limit %d)",
			ErrSaturated, tenant, len(m.queues[tenant]), m.cfg.MaxQueuedPerTenant)
	}
	if m.queued >= m.cfg.MaxQueued {
		m.guard.Release(est)
		m.counters.Add("jobs.rejected.saturated", 1)
		return "", fmt.Errorf("%w: %d jobs queued (limit %d)", ErrSaturated, m.queued, m.cfg.MaxQueued)
	}
	if err := m.spool.CreateJob(&j.man, x); err != nil {
		m.guard.Release(est)
		return "", err
	}
	m.jobs[id] = j
	m.enqueueLocked(j)
	m.counters.Add("jobs.submitted", 1)
	m.cond.Signal()
	return id, nil
}

// loadSpecTensor materializes the spec's tensor (inline text or
// server-local file) and validates it.
func loadSpecTensor(spec *Spec) (*spsym.Tensor, error) {
	var x *spsym.Tensor
	var err error
	if spec.Tensor != "" {
		x, err = spsym.ReadFrom(strings.NewReader(spec.Tensor))
	} else {
		x, err = spsym.LoadAuto(spec.TensorPath)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: tensor: %v", ErrInvalidSpec, err)
	}
	if err := x.Validate(); err != nil {
		return nil, fmt.Errorf("%w: tensor: %v", ErrInvalidSpec, err)
	}
	if spec.Rank > x.Dim {
		return nil, fmt.Errorf("%w: rank %d exceeds dimension %d", ErrInvalidSpec, spec.Rank, x.Dim)
	}
	return x, nil
}

// enqueueLocked appends j to its tenant queue; caller holds m.mu. The
// rotation invariant: a tenant appears in m.tenants exactly once iff it
// has an entry (possibly empty) in m.queues.
func (m *Manager) enqueueLocked(j *job) {
	tenant := j.man.Spec.tenant()
	if _, listed := m.queues[tenant]; !listed {
		m.tenants = append(m.tenants, tenant)
	}
	m.queues[tenant] = append(m.queues[tenant], j)
	m.queued++
	m.counters.Set("jobs.queued", int64(m.queued))
}

// dropTenantLocked removes the rotation entry at index i (its queue is
// empty); caller holds m.mu. rrNext ends up pointing at the tenant that
// followed it, preserving the rotation order.
func (m *Manager) dropTenantLocked(i int) {
	delete(m.queues, m.tenants[i])
	m.tenants = append(m.tenants[:i], m.tenants[i+1:]...)
	if m.rrNext > i {
		m.rrNext--
	}
}

// dequeueLocked pops the next job round-robin across tenants; caller
// holds m.mu. Returns nil when every queue is empty.
func (m *Manager) dequeueLocked() *job {
	for len(m.tenants) > 0 {
		if m.rrNext >= len(m.tenants) {
			m.rrNext = 0
		}
		tenant := m.tenants[m.rrNext]
		q := m.queues[tenant]
		if len(q) == 0 {
			// Emptied by removeQueuedLocked since its last pop: drop the
			// rotation entry and retry at the same index.
			m.dropTenantLocked(m.rrNext)
			continue
		}
		j := q[0]
		if len(q) == 1 {
			m.dropTenantLocked(m.rrNext)
		} else {
			m.queues[tenant] = q[1:]
			m.rrNext++ // next pop starts at the following tenant: fairness
		}
		m.queued--
		m.counters.Set("jobs.queued", int64(m.queued))
		return j
	}
	return nil
}

// removeQueuedLocked unlinks j from its tenant queue if still present;
// reports whether it was found. Caller holds m.mu.
func (m *Manager) removeQueuedLocked(j *job) bool {
	tenant := j.man.Spec.tenant()
	q := m.queues[tenant]
	for i, cand := range q {
		if cand == j {
			m.queues[tenant] = append(q[:i:i], q[i+1:]...)
			m.queued--
			m.counters.Set("jobs.queued", int64(m.queued))
			return true
		}
	}
	return false
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.closed
}

// Draining reports whether the server has stopped admitting work.
func (m *Manager) Draining() bool { return m.isDraining() }

// RetryAfter is the client backoff hint for saturation/drain rejections.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Counters exposes the control-plane counter set.
func (m *Manager) Counters() *obs.Counters { return m.counters }

// Metrics exposes the per-plan kernel collector shared by every job.
func (m *Manager) Metrics() *obs.Metrics { return m.cfg.Metrics }

// lookup returns the job or ErrUnknownJob.
func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Status returns a job's externally visible state.
func (m *Manager) Status(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	_, statErr := os.Stat(m.spool.CheckpointPath(id))
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:           j.man.ID,
		Tenant:       j.man.Spec.tenant(),
		State:        j.man.State,
		Attempt:      j.man.Attempt,
		Retries:      j.man.Retries,
		Error:        j.man.Error,
		Checkpointed: statErr == nil,
		Iters:        j.man.Iters,
		RelError:     j.man.RelError,
		Converged:    j.man.Converged,
		EnqueuedAt:   unixMS(j.man.EnqueuedAt),
		StartedAt:    unixMS(j.man.StartedAt),
		FinishedAt:   unixMS(j.man.FinishedAt),
	}, nil
}

// List returns every known job's status, sorted by ID (admission order).
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if st, err := m.Status(id); err == nil {
			out = append(out, st)
		}
	}
	sortStatuses(out)
	return out
}

func sortStatuses(sts []Status) {
	for i := 1; i < len(sts); i++ {
		for k := i; k > 0 && sts[k].ID < sts[k-1].ID; k-- {
			sts[k], sts[k-1] = sts[k-1], sts[k]
		}
	}
}

// ResultPath returns the path of a succeeded job's factor matrix.
func (m *Manager) ResultPath(id string) (string, error) {
	j, err := m.lookup(id)
	if err != nil {
		return "", err
	}
	j.mu.Lock()
	state := j.man.State
	j.mu.Unlock()
	if state != StateSucceeded {
		return "", fmt.Errorf("%w: job %s is %s", ErrNotTerminal, id, state)
	}
	return m.spool.ResultPath(id), nil
}

// Cancel stops a job: a queued job is unlinked and marked Canceled, a
// running one has its context canceled (the runner persists the terminal
// state). Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	j.mu.Lock()
	if j.man.State.Terminal() {
		j.mu.Unlock()
		m.mu.Unlock()
		return nil
	}
	if j.cancel != nil {
		cancel := j.cancel
		j.mu.Unlock()
		m.mu.Unlock()
		cancel(errCanceledByClient)
		return nil
	}
	// Queued: unlink and finish it here.
	m.removeQueuedLocked(j)
	m.mu.Unlock()
	m.finishLocked(j, StateCanceled, "canceled by client before running")
	j.mu.Unlock()
	m.counters.Add("jobs.canceled", 1)
	return nil
}

// Remove deletes a terminal job from the spool and the in-memory table.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	j.mu.Lock()
	terminal := j.man.State.Terminal()
	j.mu.Unlock()
	if !terminal {
		m.mu.Unlock()
		return fmt.Errorf("%w: job %s", ErrNotTerminal, id)
	}
	delete(m.jobs, id)
	m.mu.Unlock()
	return m.spool.Remove(id)
}

// Subscribe attaches an event channel to a job. The channel receives
// lifecycle and trace events and is closed when the job reaches a
// terminal state; slow consumers lose events rather than stalling the
// run. A subscription to an already-terminal job delivers the final
// state and closes immediately. The returned func detaches.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan Event, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.man.State.Terminal() {
		ch <- Event{Type: "state", JobID: j.man.ID, State: j.man.State,
			Error: j.man.Error, Attempt: j.man.Attempt}
		close(ch)
		return ch, func() {}, nil
	}
	key := j.nextSub
	j.nextSub++
	j.subs[key] = ch
	detach := func() {
		j.mu.Lock()
		if _, live := j.subs[key]; live {
			delete(j.subs, key)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, detach, nil
}

// emitLocked fans ev out to the job's subscribers without blocking;
// caller holds j.mu.
func (j *job) emitLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, never stall the runner
		}
	}
}

// closeSubsLocked closes every subscriber channel; caller holds j.mu.
func (j *job) closeSubsLocked() {
	for key, ch := range j.subs {
		close(ch)
		delete(j.subs, key)
	}
}

// finishLocked moves j to a terminal state, persists the manifest,
// releases the admission reservation, emits the final event, and closes
// subscribers. Caller holds j.mu (and may hold m.mu).
func (m *Manager) finishLocked(j *job, state State, errStr string) {
	j.man.State = state
	j.man.Error = errStr
	j.man.FinishedAt = time.Now()
	j.x = nil
	if j.reserved > 0 {
		m.guard.Release(j.reserved)
		j.reserved = 0
	}
	if err := m.spool.SaveManifest(&j.man); err != nil {
		m.cfg.Logf("jobs: persist %s manifest for %s: %v", state, j.man.ID, err)
	}
	j.emitLocked(Event{Type: "state", JobID: j.man.ID, State: state,
		Error: errStr, Attempt: j.man.Attempt})
	j.closeSubsLocked()
}

// Drain gracefully shuts the Manager down: admission stops (ErrDraining),
// every running job is canceled with a drain cause — which makes the
// tucker driver snapshot it on the way out and the runner persist it
// back to Queued — and every runner is joined. Queued jobs stay queued
// in the spool. ctx bounds the wait; expiry returns an error with the
// fleet still draining in the background. Idempotent.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	var cancels []context.CancelCauseFunc
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, cancel := range cancels {
		cancel(ErrDraining)
	}
	if first {
		m.counters.Add("jobs.drains", 1)
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", context.Cause(ctx))
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.rootCancel(ErrDraining)
	return nil
}

// Close drains with a generous internal deadline; use Drain for a
// caller-controlled one.
func (m *Manager) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return m.Drain(ctx)
}

// errAttemptPanic wraps a panic recovered from a run attempt (outside
// the engine's own per-worker capture), so the classifier treats it like
// a worker crash instead of killing the runner goroutine.
var errAttemptPanic = errors.New("jobs: run attempt panicked")
