package jobs

// The runner fleet: each runner goroutine owns one exec.Pool for its
// whole lifetime (the pool-ownership contract — drivers borrow it via
// Options.Pool and never close it) and loops popping jobs, running the
// retry loop, and persisting every state transition before acting on it.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/symprop/symprop/internal/checkpoint"
	"github.com/symprop/symprop/internal/exec"
	"github.com/symprop/symprop/internal/faultinject"
	"github.com/symprop/symprop/internal/linalg"
	"github.com/symprop/symprop/internal/obs"
	"github.com/symprop/symprop/internal/spsym"
	"github.com/symprop/symprop/internal/tucker"
)

func (m *Manager) runner(idx int) {
	defer m.wg.Done()
	pool := exec.NewPool(m.cfg.JobWorkers)
	defer pool.Close()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j, pool)
		m.mu.Lock()
		m.running--
		m.counters.Set("jobs.running", int64(m.running))
		m.mu.Unlock()
	}
}

// next blocks for the next runnable job, expiring stale ones on the way;
// nil means the Manager is draining and the runner must exit.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.draining || m.closed {
			return nil
		}
		j := m.dequeueLocked()
		if j == nil {
			m.cond.Wait()
			continue
		}
		j.mu.Lock()
		if j.man.State.Terminal() { // canceled while queued, already finished
			j.mu.Unlock()
			continue
		}
		if m.cfg.QueueTTL > 0 && time.Since(j.man.EnqueuedAt) > m.cfg.QueueTTL {
			m.finishLocked(j, StateExpired,
				fmt.Sprintf("expired after %s in queue (ttl %s)",
					time.Since(j.man.EnqueuedAt).Round(time.Millisecond), m.cfg.QueueTTL))
			j.mu.Unlock()
			m.counters.Add("jobs.expired", 1)
			continue
		}
		j.mu.Unlock()
		m.running++
		m.counters.Set("jobs.running", int64(m.running))
		return j
	}
}

// jobSink adapts a job into the driver's per-sweep trace sink.
type jobSink struct{ j *job }

func (s jobSink) Emit(ev obs.TraceEvent) error {
	s.j.mu.Lock()
	s.j.emitLocked(Event{Type: "trace", JobID: s.j.man.ID,
		Attempt: s.j.man.Attempt, Trace: &traceJSON{
			Sweep: ev.Sweep, Objective: ev.Objective, RelError: ev.RelError,
			Fit: ev.Fit, WallNs: ev.WallNs,
		}})
	s.j.mu.Unlock()
	return nil
}

// runJob executes one job's retry loop on the runner's pool and leaves
// the job in a persisted terminal state — or back in Queued if the run
// was interrupted by drain (the next process resumes it).
func (m *Manager) runJob(j *job, pool *exec.Pool) {
	// Build the job context: root (dies on Close) → optional per-job
	// deadline anchored at the first start (so restarts don't extend it)
	// → the cancel handle Cancel/Drain use to install a cause.
	j.mu.Lock()
	if j.man.StartedAt.IsZero() {
		j.man.StartedAt = time.Now()
	}
	base := m.rootCtx
	var deadlineCancel context.CancelFunc
	if t := j.man.Spec.TimeoutSec; t > 0 {
		base, deadlineCancel = context.WithDeadline(base,
			j.man.StartedAt.Add(time.Duration(t*float64(time.Second))))
	}
	ctx, cancel := context.WithCancelCause(base)
	j.cancel = cancel
	j.man.State = StateRunning
	if err := m.spool.SaveManifest(&j.man); err != nil {
		m.cfg.Logf("jobs: persist running manifest %s: %v", j.man.ID, err)
	}
	j.emitLocked(Event{Type: "state", JobID: j.man.ID, State: StateRunning,
		Attempt: j.man.Attempt + 1})
	x := j.x
	// The job is running: the admission reservation hands over to the
	// kernels' own reservations against the same guard.
	if j.reserved > 0 {
		m.guard.Release(j.reserved)
		j.reserved = 0
	}
	j.mu.Unlock()
	defer func() {
		cancel(nil)
		if deadlineCancel != nil {
			deadlineCancel()
		}
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
	}()

	if x == nil { // requeued by a previous drain in this same process
		var err error
		x, err = m.spool.LoadTensor(j.man.ID)
		if err != nil {
			j.mu.Lock()
			m.finishLocked(j, StateFailed, fmt.Sprintf("spool tensor unreadable: %v", err))
			j.mu.Unlock()
			m.counters.Add("jobs.failed", 1)
			return
		}
	}

	policy := &m.cfg.Retry
	for {
		j.mu.Lock()
		j.man.Attempt++
		attempt := j.man.Attempt
		if err := m.spool.SaveManifest(&j.man); err != nil {
			m.cfg.Logf("jobs: persist attempt manifest %s: %v", j.man.ID, err)
		}
		j.mu.Unlock()

		res, err := m.runAttempt(ctx, j, x, pool)
		if err == nil {
			m.succeed(j, res)
			return
		}
		switch policy.Classify(err) {
		case ClassDrained:
			// The driver snapshotted on the way out (cancel-with-cause →
			// canceledErr best-effort save). Back to Queued: the next
			// process — or a later runner, if the root ctx survived —
			// picks the job up from the checkpoint.
			j.mu.Lock()
			j.man.State = StateQueued
			j.man.Error = ""
			if serr := m.spool.SaveManifest(&j.man); serr != nil {
				m.cfg.Logf("jobs: persist requeued manifest %s: %v", j.man.ID, serr)
			}
			j.emitLocked(Event{Type: "state", JobID: j.man.ID,
				State: StateQueued, Attempt: attempt})
			j.mu.Unlock()
			m.counters.Add("jobs.requeued", 1)
			return
		case ClassCanceled:
			reason := "canceled by client"
			if errors.Is(err, context.DeadlineExceeded) {
				reason = fmt.Sprintf("deadline exceeded after %gs", j.man.Spec.TimeoutSec)
			}
			j.mu.Lock()
			m.finishLocked(j, StateCanceled, reason+": "+err.Error())
			j.mu.Unlock()
			m.counters.Add("jobs.canceled", 1)
			return
		case ClassRetryable:
			j.mu.Lock()
			j.man.Retries++
			retries := j.man.Retries
			exhausted := attempt >= policy.MaxAttempts
			if exhausted {
				m.finishLocked(j, StateFailed,
					fmt.Sprintf("retries exhausted after %d attempts: %v", attempt, err))
			} else {
				j.man.Error = err.Error() // visible in status while backing off
				if serr := m.spool.SaveManifest(&j.man); serr != nil {
					m.cfg.Logf("jobs: persist retry manifest %s: %v", j.man.ID, serr)
				}
			}
			j.mu.Unlock()
			if exhausted {
				m.counters.Add("jobs.failed", 1)
				return
			}
			m.counters.Add("jobs.retries", 1)
			d := policy.Delay(retries)
			m.cfg.Logf("jobs: %s attempt %d failed (%v); retry %d in %s",
				j.man.ID, attempt, err, retries, d.Round(time.Millisecond))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				// Cancel or drain arrived mid-backoff; loop once more — the
				// next attempt fails immediately with the ctx cause and is
				// classified above.
			}
		default: // ClassTerminal
			j.mu.Lock()
			m.finishLocked(j, StateFailed, err.Error())
			j.mu.Unlock()
			m.counters.Add("jobs.failed", 1)
			return
		}
	}
}

// runAttempt performs one driver run, resuming from the job's checkpoint
// when one exists. Panics from the fault hook or the driver itself are
// recovered into a retryable error so a crashing attempt never takes the
// runner goroutine down with it.
func (m *Manager) runAttempt(ctx context.Context, j *job, x *spsym.Tensor, pool *exec.Pool) (res *tucker.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", errAttemptPanic, r)
		}
	}()
	if ferr := faultinject.Fire(faultinject.SiteJobRun, j.man.ID); ferr != nil {
		return nil, fmt.Errorf("%w: %v", errInjectedRunFault, ferr)
	}

	ckptPath := m.spool.CheckpointPath(j.man.ID)
	var resume *checkpoint.State
	if st, lerr := checkpoint.Load(ckptPath); lerr == nil {
		resume = st
	} else if !errors.Is(lerr, os.ErrNotExist) {
		// A torn or foreign snapshot must not wedge the job: discard it
		// and restart the attempt from scratch.
		m.counters.Add("jobs.ckpt_discarded", 1)
		m.cfg.Logf("jobs: %s discarding unusable checkpoint: %v", j.man.ID, lerr)
		os.Remove(ckptPath)
	}

	spec := j.man.Spec
	opts := tucker.Options{
		Rank:            spec.Rank,
		MaxIters:        spec.MaxIters,
		Tol:             spec.Tol,
		Seed:            spec.Seed,
		Workers:         j.man.Workers, // resolved at admission: fingerprint-stable
		Shards:          j.man.Shards,  // pinned at admission: same layout every attempt
		Guard:           m.guard,
		Pool:            pool,
		Ctx:             ctx,
		CheckpointPath:  ckptPath,
		CheckpointEvery: spec.CheckpointEvery,
		Resume:          resume,
		Metrics:         m.cfg.Metrics,
		TraceSink:       jobSink{j},
	}
	switch spec.Algo {
	case "", "hoqri":
		return tucker.HOQRI(x, opts)
	case "hooi":
		return tucker.HOOI(x, opts)
	case "hooi-randomized":
		return tucker.HOOIRandomized(x, opts)
	default: // validate() rejects this; defense in depth
		return nil, fmt.Errorf("%w: unknown algo %q", ErrInvalidSpec, spec.Algo)
	}
}

// succeed persists the result factor and moves the job to Succeeded. The
// checkpoint is kept: it is the proof of lineage for the smoke test and
// is removed with the job directory.
func (m *Manager) succeed(j *job, res *tucker.Result) {
	path := m.spool.ResultPath(j.man.ID)
	if err := atomicWrite(path, func(f *os.File) error {
		return writeFactor(f, res.U)
	}); err != nil {
		j.mu.Lock()
		m.finishLocked(j, StateFailed, fmt.Sprintf("write result: %v", err))
		j.mu.Unlock()
		m.counters.Add("jobs.failed", 1)
		return
	}
	j.mu.Lock()
	j.man.Iters = res.Iters
	j.man.RelError = res.FinalRelError()
	j.man.Converged = res.Converged
	m.finishLocked(j, StateSucceeded, "")
	j.mu.Unlock()
	m.counters.Add("jobs.succeeded", 1)
}

// writeFactor writes U in the shortest round-trippable decimal form
// (FormatFloat 'g' -1), so two bit-identical factors produce byte-equal
// files — the property the serve smoke test compares on.
func writeFactor(f *os.File, u *linalg.Matrix) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%% symprop factor matrix %d x %d\n", u.Rows, u.Cols)
	for i := 0; i < u.Rows; i++ {
		for k := 0; k < u.Cols; k++ {
			if k > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(u.At(i, k), 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	_, err := f.WriteString(b.String())
	return err
}
