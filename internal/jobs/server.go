package jobs

// The HTTP/JSON face of the Manager. Error mapping is fixed here and
// documented in docs/SERVING.md: ErrInvalidSpec → 400, ErrUnknownJob →
// 404, ErrNotTerminal → 409, ErrSaturated → 429 + Retry-After,
// ErrDraining → 503 + Retry-After. Events stream as Server-Sent Events,
// one JSON Event per "data:" line.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"
)

// DefaultKeepAliveInterval is the period between SSE keepalive comment
// frames on an otherwise-idle event stream.
const DefaultKeepAliveInterval = 15 * time.Second

// Server serves the job API over a Manager.
type Server struct {
	m         *Manager
	mux       *http.ServeMux
	keepAlive time.Duration
}

// SetKeepAliveInterval overrides the SSE keepalive period (tests use
// milliseconds; <= 0 restores the default). Call before serving traffic.
func (s *Server) SetKeepAliveInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultKeepAliveInterval
	}
	s.keepAlive = d
}

// NewServer wires the job API routes over m.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux(), keepAlive: DefaultKeepAliveInterval}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is every non-2xx response's JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps the jobs error taxonomy to HTTP status codes; capacity
// and drain rejections carry a Retry-After hint.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalidSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotTerminal):
		code = http.StatusConflict
	case errors.Is(err, ErrSaturated):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After",
			strconv.Itoa(int(s.m.RetryAfter()/time.Second)))
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing to do
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeErr(w, fmt.Errorf("%w: bad JSON: %v", ErrInvalidSpec, err))
		return
	}
	id, err := s.m.Submit(spec)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, struct {
		ID    string `json:"id"`
		State State  `json:"state"`
	}{ID: id, State: StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: s.m.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.m.Status(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		s.writeErr(w, err)
		return
	}
	st, err := s.m.Status(id)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	path, err := s.m.ResultPath(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		s.writeErr(w, fmt.Errorf("result file: %w", err))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeContent(w, r, "U.txt", time.Time{}, f)
}

// handleEvents streams the job's lifecycle and trace events as SSE until
// the job reaches a terminal state or the client disconnects. Idle
// streams carry periodic keepalive comment frames so clients and
// buffering intermediaries can tell a quiet job from a dead connection;
// events that fail to marshal are dropped but counted
// (jobs.events_dropped) instead of vanishing silently.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ch, detach, err := s.m.Subscribe(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer detach()
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErr(w, fmt.Errorf("jobs: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	tick := time.NewTicker(s.keepAlive)
	defer tick.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal state reached; channel closed
			}
			buf, err := json.Marshal(ev)
			if err != nil {
				// A NaN/Inf trace value makes the event unencodable; the
				// stream must survive, but the loss must be visible.
				s.m.Counters().Add("jobs.events_dropped", 1)
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
				return // client gone
			}
			fl.Flush()
		case <-tick.C:
			// SSE comment frame: ignored by conforming clients, but keeps
			// the connection visibly alive end to end.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return // client gone
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := "ok"
	code := http.StatusOK
	if s.m.Draining() {
		st = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{Status: st})
}

// handleMetrics exposes the control-plane counters and the per-plan
// kernel metrics in one JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Counters map[string]int64 `json:"counters"`
		Plans    any              `json:"plans"`
	}{
		Counters: s.m.Counters().Snapshot(),
		Plans:    s.m.Metrics().Snapshot(),
	})
}
