// Package memguard simulates a bounded-memory machine. The paper's
// experiments ran on a 256 GB node and several baselines terminate with
// "OOM" (Figs. 4, 5, 7); reproducing those outcomes on arbitrary hardware
// requires a deterministic budget rather than an actual crash. Every
// allocation-heavy code path in this module asks the guard before
// allocating and surfaces ErrOutOfMemory when the projected footprint
// exceeds the budget.
//
// Semantics: reservations model the *peak footprint of a phase* — a kernel
// reserves its outputs and workspaces for the duration of the call and
// releases them on return, even when the output object outlives the call.
// Cross-phase residency (e.g. the compact Y alive while HOOI's SVD runs)
// is therefore approximated by each phase's own dominant term, which is
// accurate wherever the comparison matters because the phases' footprints
// differ by orders of magnitude.
package memguard

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"

	"github.com/symprop/symprop/internal/faultinject"
)

// ErrOutOfMemory is returned (wrapped) whenever a projected allocation
// exceeds the configured budget. Callers detect it with errors.Is.
var ErrOutOfMemory = errors.New("memguard: out of memory")

// DefaultBudget is the simulated machine size when SYMPROP_MEM_BUDGET is
// unset: 2 GiB, which scales the paper's 256 GB node down to laptop size
// while preserving which method dies on which configuration.
const DefaultBudget int64 = 2 << 30

// Guard tracks a byte budget. The zero value is unlimited; use New for a
// bounded guard. Guards are safe for concurrent use: the Tucker drivers
// share one guard across sweeps and the kernels' worker fan-out, so
// Reserve/Release pair up correctly even when phases overlap (e.g. a
// retry with reduced workers racing a late Release from the failed
// attempt).
type Guard struct {
	mu     sync.Mutex
	budget int64 // <= 0 means unlimited
	used   int64
}

// New returns a guard with the given budget in bytes. A non-positive
// budget disables all checks.
func New(budget int64) *Guard {
	return &Guard{budget: budget}
}

// FromEnv returns a guard configured from the SYMPROP_MEM_BUDGET
// environment variable (bytes; suffixes K, M, G accepted). Unset or
// unparsable values fall back to DefaultBudget; "0" disables the guard.
func FromEnv() *Guard {
	s := os.Getenv("SYMPROP_MEM_BUDGET")
	if s == "" {
		return New(DefaultBudget)
	}
	b, err := ParseBytes(s)
	if err != nil {
		return New(DefaultBudget)
	}
	return New(b)
}

// ParseBytes parses a byte count with an optional K/M/G suffix.
func ParseBytes(s string) (int64, error) {
	if s == "" {
		return 0, errors.New("memguard: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g', 'G':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("memguard: bad size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("memguard: negative size %d", v)
	}
	return v * mult, nil
}

// Reserve records an intended allocation of n bytes, returning a wrapped
// ErrOutOfMemory if it would exceed the budget. n may be produced by
// saturating arithmetic; anything negative or huge fails immediately.
func (g *Guard) Reserve(n int64, what string) error {
	if err := faultinject.Fire(faultinject.SiteGuardReserve, what); err != nil {
		return fmt.Errorf("memguard: %s rejected by fault injection (%v): %w", what, err, ErrOutOfMemory)
	}
	if n < 0 {
		return fmt.Errorf("memguard: %s needs an impossibly large allocation: %w", what, ErrOutOfMemory)
	}
	if g == nil || g.budget <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.used+n > g.budget || g.used+n < 0 {
		return fmt.Errorf("memguard: %s needs %d bytes, %d of %d already used: %w",
			what, n, g.used, g.budget, ErrOutOfMemory)
	}
	g.used += n
	return nil
}

// Release returns n bytes to the budget.
func (g *Guard) Release(n int64) {
	if g == nil || g.budget <= 0 {
		return
	}
	g.mu.Lock()
	g.used -= n
	if g.used < 0 {
		g.used = 0
	}
	g.mu.Unlock()
}

// Used reports the currently reserved byte count.
func (g *Guard) Used() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// Budget reports the configured budget (0 = unlimited).
func (g *Guard) Budget() int64 {
	if g == nil || g.budget <= 0 {
		return 0
	}
	return g.budget
}

// Float64Bytes returns the byte footprint of n float64 values with
// saturation, so callers can pass products of saturating arithmetic
// directly.
func Float64Bytes(n int64) int64 {
	if n < 0 || n > (1<<60) {
		return 1 << 62 // effectively infinite; Reserve will reject it
	}
	return n * 8
}
