package memguard

import (
	"errors"
	"sync"
	"testing"

	"github.com/symprop/symprop/internal/faultinject"
)

func TestReserveWithinBudget(t *testing.T) {
	g := New(100)
	if err := g.Reserve(60, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(40, "b"); err != nil {
		t.Fatal(err)
	}
	if g.Used() != 100 {
		t.Errorf("Used = %d, want 100", g.Used())
	}
}

func TestReserveExceedsBudget(t *testing.T) {
	g := New(100)
	if err := g.Reserve(101, "big"); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("want ErrOutOfMemory, got %v", err)
	}
	if err := g.Reserve(60, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(60, "b"); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("cumulative overflow: want ErrOutOfMemory, got %v", err)
	}
}

func TestRelease(t *testing.T) {
	g := New(100)
	if err := g.Reserve(80, "a"); err != nil {
		t.Fatal(err)
	}
	g.Release(50)
	if g.Used() != 30 {
		t.Errorf("Used = %d, want 30", g.Used())
	}
	g.Release(1000)
	if g.Used() != 0 {
		t.Errorf("Used after over-release = %d, want 0", g.Used())
	}
}

func TestUnlimitedGuard(t *testing.T) {
	for _, g := range []*Guard{nil, New(0), New(-5), {}} {
		if err := g.Reserve(1<<55, "huge"); err != nil {
			t.Errorf("unlimited guard rejected allocation: %v", err)
		}
		if g.Budget() != 0 {
			t.Errorf("unlimited guard Budget = %d, want 0", g.Budget())
		}
	}
}

func TestNegativeReservationFails(t *testing.T) {
	g := New(100)
	if err := g.Reserve(-1, "saturated"); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("negative (saturated) size must fail: %v", err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"123": 123, "1K": 1 << 10, "2k": 2 << 10,
		"3M": 3 << 20, "4G": 4 << 30, "0": 0,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-1", "1T5"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("SYMPROP_MEM_BUDGET", "64M")
	if g := FromEnv(); g.Budget() != 64<<20 {
		t.Errorf("FromEnv budget = %d, want %d", g.Budget(), 64<<20)
	}
	t.Setenv("SYMPROP_MEM_BUDGET", "")
	if g := FromEnv(); g.Budget() != DefaultBudget {
		t.Errorf("unset env: budget = %d, want default", g.Budget())
	}
	t.Setenv("SYMPROP_MEM_BUDGET", "garbage")
	if g := FromEnv(); g.Budget() != DefaultBudget {
		t.Errorf("bad env: budget = %d, want default", g.Budget())
	}
	t.Setenv("SYMPROP_MEM_BUDGET", "0")
	if g := FromEnv(); g.Budget() != 0 {
		t.Errorf("zero env: budget = %d, want unlimited", g.Budget())
	}
}

// The guard is shared across Tucker sweeps and the kernels' worker fan-out,
// so Reserve/Release must be safe under concurrency (run with -race). Every
// goroutine's reservations are paired with releases, so the final count must
// come back to exactly zero — any lost update shows up as a nonzero residue.
func TestConcurrentReserveRelease(t *testing.T) {
	g := New(1 << 30)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := g.Reserve(1024, "worker chunk"); err != nil {
					t.Error(err)
					return
				}
				if g.Used() <= 0 {
					t.Error("Used() not positive while holding a reservation")
					return
				}
				g.Release(1024)
			}
		}()
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Errorf("Used = %d after balanced reserve/release, want 0", g.Used())
	}
}

// An armed SiteGuardReserve hook forces rejections even on an unlimited
// guard, and the error is a wrapped ErrOutOfMemory.
func TestInjectedRejection(t *testing.T) {
	reject := errors.New("injected")
	defer faultinject.Arm(faultinject.SiteGuardReserve, func(payload any) error {
		if payload != "victim" {
			return nil
		}
		return reject
	})()
	g := New(0) // unlimited
	if err := g.Reserve(8, "bystander"); err != nil {
		t.Fatalf("non-matching reservation failed: %v", err)
	}
	if err := g.Reserve(8, "victim"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("injected rejection = %v, want ErrOutOfMemory", err)
	}
}

func TestFloat64Bytes(t *testing.T) {
	if Float64Bytes(10) != 80 {
		t.Error("Float64Bytes(10) != 80")
	}
	g := New(1 << 40)
	if err := g.Reserve(Float64Bytes(1<<61), "sat"); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("saturated float count must be rejected: %v", err)
	}
}
