package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/symprop/symprop/internal/faultinject"
	"github.com/symprop/symprop/internal/obs"
)

func sumPlan(name string, out []int64, items int) Plan {
	return Plan{
		Name:  name,
		Items: items,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := w.Tick(i); err != nil {
					return err
				}
				out[i] = int64(i)
			}
			return nil
		},
	}
}

func TestRunRejectsUnnamedPlan(t *testing.T) {
	err := Run(Config{}, Plan{Items: 4, Body: func(w *Worker, lo, hi int) error { return nil }})
	if err == nil {
		t.Fatal("unnamed plan must be rejected")
	}
	if got := err.Error(); got != "exec: plan has no name (Plan.Name is required: it keys fault sites, panic attribution, and metrics)" {
		t.Fatalf("unexpected error text %q", got)
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	defer p.Close()
	m := obs.New()
	out := make([]int64, 100)
	if err := Run(Config{Workers: 3, Pool: p, Metrics: m}, sumPlan("test.obs", out, 100)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Name != "test.obs" {
		t.Fatalf("snapshot = %+v, want one test.obs entry", snap)
	}
	pm := snap[0]
	if pm.Invocations != 1 || pm.Items != 100 || pm.WorkerSpans != 3 {
		t.Errorf("counters off: %+v", pm)
	}
	if pm.SpanNs <= 0 || pm.BusyNs < 0 || pm.Imbalance < 1 {
		t.Errorf("timings off: %+v", pm)
	}
}

// The collector must observe failed invocations too (a plan that dies
// mid-run still burned its workers' time), and none of the abnormal exits
// may leak goroutines: cancellation, a panicking body, and an injected
// worker fault.
func TestMetricsUnderCancelPanicAndFault(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	m := obs.New()
	cfgFor := func(ctx context.Context) Config {
		return Config{Ctx: ctx, Workers: 4, Pool: p, Metrics: m}
	}

	// Cancellation mid-run: the context dies after the first worker tick.
	ctx, cancel := context.WithCancel(context.Background())
	out := make([]int64, 4096)
	err := Run(cfgFor(ctx), Plan{
		Name:       "test.obs.cancel",
		Items:      len(out),
		CheckEvery: 1,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				cancel()
				if err := w.Tick(i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// Panicking body: typed capture, all slots joined.
	err = Run(cfgFor(context.Background()), Plan{
		Name:  "test.obs.panic",
		Items: 64,
		Body: func(w *Worker, lo, hi int) error {
			panic("poisoned")
		},
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}

	// Injected worker fault through the plan-scoped site.
	boom := errors.New("injected")
	disarm := faultinject.Arm(faultinject.PlanWorkerSite("test.obs.fault"),
		faultinject.OnHit(1, func(any) error { return boom }))
	err = Run(cfgFor(context.Background()), sumPlan("test.obs.fault", make([]int64, 256), 256))
	disarm()
	if !errors.Is(err, boom) {
		t.Fatalf("want injected fault, got %v", err)
	}

	for _, name := range []string{"test.obs.cancel", "test.obs.panic", "test.obs.fault"} {
		found := false
		for _, pm := range m.Snapshot() {
			if pm.Name == name && pm.Invocations == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("plan %s not recorded after abnormal exit", name)
		}
	}
}

// A config collector that is also the global collector must record each
// invocation once, not twice.
func TestRunDedupsGlobalCollector(t *testing.T) {
	m := obs.New()
	obs.SetGlobal(m)
	defer obs.SetGlobal(nil)
	if err := Run(Config{Workers: 2, Metrics: m}, sumPlan("test.obs.dedup", make([]int64, 32), 32)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Invocations != 1 {
		t.Fatalf("want exactly one recorded invocation, got %+v", snap)
	}
}

// Enabling pprof labels must not change what the plan computes, nor leak.
func TestRunWithPprofLabels(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	defer p.Close()
	m := obs.New()
	m.EnablePprofLabels()
	m.SetPhase("sweep-7")
	out := make([]int64, 100)
	if err := Run(Config{Workers: 3, Pool: p, Metrics: m}, sumPlan("test.obs.labels", out, 100)); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d under labels", i, v)
		}
	}
}
