package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
)

// ErrWorkerPanic is the sentinel wrapped by every recovered worker panic;
// callers test for it with errors.Is. kernels.ErrWorkerPanic aliases it.
var ErrWorkerPanic = errors.New("exec: worker panicked")

// PanicError carries a panic recovered from a plan worker: the plan it ran,
// the panic value, and the goroutine stack at recovery time.
type PanicError struct {
	Plan  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: worker panicked in plan %s: %v", e.Plan, e.Value)
}

// Is reports true for ErrWorkerPanic so errors.Is matches the sentinel.
func (e *PanicError) Is(target error) bool { return target == ErrWorkerPanic }

// capturePanic converts an in-flight panic into a *PanicError stored at
// *errp (unless an error is already recorded). Deferred at the top of
// every worker slot so a crashing body degrades to an error return
// instead of killing the process.
func capturePanic(errp *error, plan string) {
	if r := recover(); r != nil && *errp == nil {
		*errp = &PanicError{Plan: plan, Value: r, Stack: debug.Stack()}
	}
}

// IsCanceled is a nil-safe non-blocking poll: it reports whether ctx is
// non-nil and done.
func IsCanceled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Cause returns the error a canceled computation should surface: the
// cancel cause when one was attached via context.WithCancelCause, else
// the plain context error.
func Cause(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// FirstNonFinite returns the index of the first NaN or ±Inf in data, or
// -1 when every value is finite. The engine provides the scan (one pass,
// no allocation); what to *do* about a poisoned output — jittered
// restarts, breakdown classification — is policy and stays with the
// caller (see tucker's health sentinels).
func FirstNonFinite(data []float64) int {
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}
