// Package exec is the execution engine behind every parallel kernel in the
// module. It owns the two things the kernels used to duplicate:
//
//   - Worker lifecycle. A Pool is a persistent set of goroutines created
//     once per decomposition run (tucker.Options.Pool) and reused across
//     every kernel call of every sweep, so iterative drivers stop paying
//     goroutine spawn per call. A nil Pool still works — fan-out falls
//     back to transient goroutines — so one-shot callers need no setup.
//
//   - The worker loop contract. Run executes a Plan {items, partitioning,
//     per-worker scratch, body, finish} and centralizes context polling,
//     cancel causes, panic capture into ErrWorkerPanic, and the
//     faultinject worker/output sites. Kernels describe *what* each
//     worker does; the engine owns *how* workers run.
//
// For and Chunks are the bare fan-out primitives underneath Run (no
// cancellation, no panic capture, no fault sites); linalg's ParallelFor
// family is a thin shim over them. Kernel packages must not use the bare
// primitives for kernel loops — symlint's parafor analyzer enforces that
// they go through Run.
//
// Nesting caveat: a Plan body must not call Run (or For/Chunks) on the
// same Pool it is running on — with all pool workers busy, the nested
// fan-out's submitted slots would wait forever. Nested parallelism inside
// a body should pass a nil pool (transient goroutines) or stay serial.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of worker goroutines that plan slots are
// dispatched onto. The zero of *Pool (nil) is valid everywhere a Pool is
// accepted and means "no resident workers": fan-out uses transient
// goroutines instead.
type Pool struct {
	tasks  chan func()
	wg     sync.WaitGroup
	size   int
	closed atomic.Bool
}

// poolsCreated counts NewPool calls process-wide. It exists for tests
// asserting pool reuse (e.g. that nested drivers share one pool instead of
// creating one per inner run); it never wraps in practice.
var poolsCreated atomic.Int64

// PoolsCreated returns the number of pools created since process start —
// a monotone counter for pool-reuse assertions in tests.
func PoolsCreated() int64 { return poolsCreated.Load() }

// NewPool starts size resident worker goroutines (GOMAXPROCS when
// size <= 0). The pool must be released with Close when the run ends.
//
// Ownership contract: whoever calls NewPool owns the pool and is the only
// party that may Close it. Code that *accepts* a pool (kernels.Options.Exec,
// tucker.Options.Pool) must treat it as borrowed — use it, never close it.
// Close is idempotent and nil-safe, so owners may defer it unconditionally.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	poolsCreated.Add(1)
	p := &Pool{tasks: make(chan func()), size: size}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Size reports the resident worker count; a nil pool has none.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// Close stops the resident workers and waits for them to exit. It is
// idempotent and nil-safe; fan-out through a closed pool degrades to
// transient goroutines rather than failing.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}

// submit hands task to a resident worker, falling back to a transient
// goroutine when the pool is nil or closed.
func (p *Pool) submit(task func()) {
	if p == nil || p.closed.Load() {
		go task()
		return
	}
	p.tasks <- task
}

// dispatch fans task out across n slots and joins them. Slot 0 runs on the
// calling goroutine — the caller is itself a worker — so a pool sized to
// the worker count leaves one resident worker free for concurrent callers.
func (p *Pool) dispatch(n int, task func(slot int)) {
	if n <= 1 {
		task(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for slot := 1; slot < n; slot++ {
		s := slot
		p.submit(func() {
			defer wg.Done()
			task(s)
		})
	}
	task(0)
	wg.Wait()
}

// ChunkRange returns worker w's half-open share of [0, n) under the
// balanced static split: every worker gets n/workers items and the first
// n%workers workers get one extra.
func ChunkRange(n, workers, w int) (lo, hi int) {
	base, rem := n/workers, n%workers
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// For is the bare static fan-out primitive: body(lo, hi) over a balanced
// contiguous split of [0, n) across workers (GOMAXPROCS when workers <= 0),
// inline on the caller when one worker suffices. It carries no
// cancellation, panic capture, or fault sites — kernel loops use Run.
func For(p *Pool, n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	p.dispatch(workers, func(w int) {
		lo, hi := ChunkRange(n, workers, w)
		body(lo, hi)
	})
}

// Chunks is the bare dynamic fan-out primitive: workers claim fixed-size
// chunks of [0, n) off a shared atomic cursor until the range is drained,
// which load-balances irregular per-item cost at the price of a
// non-deterministic item→worker assignment. chunk <= 0 selects
// DefaultChunk. Like For it carries no resilience plumbing.
func Chunks(p *Pool, n, workers, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if c := (n + chunk - 1) / chunk; workers > c {
		workers = c
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var cursor atomic.Int64
	p.dispatch(workers, func(int) {
		for {
			lo := int(cursor.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			body(lo, min(lo+chunk, n))
		}
	})
}
