package exec

import (
	"context"
	"errors"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"github.com/symprop/symprop/internal/faultinject"
	"github.com/symprop/symprop/internal/obs"
)

// Config carries the per-call execution context a kernel threads into Run:
// the cancellation context, the requested worker count (GOMAXPROCS when
// <= 0), the persistent pool slots are dispatched on (nil for transient
// goroutines), and the optional metrics collector every plan invocation is
// recorded into.
type Config struct {
	Ctx     context.Context
	Workers int
	Pool    *Pool
	// Metrics, when non-nil, receives per-plan counters (invocations,
	// items, per-worker busy time, wall span) for every Run through this
	// config. Independent of it, Run also records into the process-global
	// collector when one is installed (obs.SetGlobal). nil costs nothing
	// beyond one nil check and one atomic load per Run.
	Metrics *obs.Metrics
}

// Partition selects how a plan's items are split across workers.
type Partition int

const (
	// Static hands each worker one balanced contiguous range of [0, Items)
	// (ChunkRange). The item→worker assignment is a pure function of
	// (Items, workers), which is what owner-free deterministic passes
	// (n-ary core accumulation, SPLATT roots) rely on.
	Static Partition = iota
	// Chunked has workers claim Chunk-sized ranges off a shared atomic
	// cursor — dynamic load balancing for irregular per-item cost. The
	// assignment is timing-dependent; bodies must make output placement
	// independent of which worker ran an item (e.g. striped row locks).
	Chunked
	// PerWorker runs Body(w, slot, slot+1) once per worker slot — the
	// explicit entry point for owner-computes kernels whose schedule
	// (ScheduleCache bins) already fixes each worker's item set. This
	// replaces the old ParallelForWorkers(workers, workers, ...) idiom.
	PerWorker
)

// Engine-wide defaults: the dynamic-partition chunk size and the
// cancellation polling stride (items between context polls; the same
// cancelCheckEvery the kernels hand-rolled before the engine existed).
const (
	DefaultChunk      = 64
	DefaultCheckEvery = 64
)

// Plan describes one parallel kernel pass. Zero values select defaults:
// Workers falls back to Config.Workers, Chunk to DefaultChunk, CheckEvery
// to DefaultCheckEvery; Scratch and Finish are optional.
type Plan struct {
	// Name identifies the plan in panic errors and the faultinject plan
	// registry (faultinject.PlanWorkerSite/PlanOutputSite).
	Name string
	// Items is the item count being partitioned. Ignored by PerWorker,
	// whose "items" are the worker slots themselves.
	Items int
	// Partition selects the split strategy (Static by default).
	Partition Partition
	// Workers overrides Config.Workers when > 0. Kernels that clamp the
	// worker count to a schedule (owner-computes bins) set it here.
	Workers int
	// Chunk is the Chunked partition's claim size.
	Chunk int
	// CheckEvery is the number of Tick calls between context polls.
	// Plans whose items are coarse (a SPLATT root subtree, a GEMM row
	// block) set 1 so cancellation latency stays bounded by one item.
	CheckEvery int
	// Scratch, when set, runs once per worker slot before its first body
	// call, on the worker's goroutine, typically stashing warm per-worker
	// state (WorkspacePool-backed lattice buffers) in w.Scratch.
	Scratch func(w *Worker) error
	// Body processes items [lo, hi). It is called once per worker for
	// Static/PerWorker and once per claimed chunk for Chunked. Bodies
	// call w.Tick(item) once per item for cancellation and fault sites.
	Body func(w *Worker, lo, hi int) error
	// Finish, when set, runs serially on the caller in slot order after
	// all workers have joined — for every slot that started, even when
	// the plan failed — so scratch teardown (pool returns, stats folds)
	// is deterministic and leak-free.
	Finish func(w *Worker)
}

// Worker is the per-slot handle passed to a plan's callbacks.
type Worker struct {
	// Index is the slot number in [0, workers).
	Index int
	// Scratch is the slot-private state installed by Plan.Scratch.
	Scratch any

	ctx   context.Context
	every int
	ticks int
	site  faultinject.Site
}

// Tick is the per-item heartbeat: it polls the context every CheckEvery
// calls (including the first), then fires the generic kernels.worker
// fault site followed by the plan-scoped site, with the item as payload.
// A non-nil return aborts the worker with that error.
//
// This runs once per non-zero in every kernel, so the idle path is kept
// to a countdown branch (no division — CheckEvery is a variable, and a
// modulo here costs a real div instruction per item) plus one atomic load
// (the faultinject disarmed check, hoisted so the two sites share it).
func (w *Worker) Tick(item int) error {
	if w.ticks == 0 {
		if err := w.Canceled(); err != nil {
			return err
		}
		w.ticks = w.every
	}
	w.ticks--
	if faultinject.Active() {
		if err := faultinject.Fire(faultinject.SiteKernelWorker, item); err != nil {
			return err
		}
		return faultinject.Fire(w.site, item)
	}
	return nil
}

// Canceled polls the worker's context without blocking, returning the
// cancel cause if it is done and nil otherwise.
func (w *Worker) Canceled() error {
	if IsCanceled(w.ctx) {
		return Cause(w.ctx)
	}
	return nil
}

// Run executes a plan: it registers the plan's fault sites, refuses
// pre-canceled contexts before any worker starts, fans Body out across the
// partition with per-slot panic capture, joins, runs Finish for every
// started slot, and returns the first error in slot order (deterministic
// regardless of which worker lost the race). A single-worker plan runs
// inline on the caller with the same capture semantics.
//
// A plan must be named: the name keys the faultinject plan-site registry,
// PanicError attribution, and the obs per-plan counters, all of which
// degrade silently under "". When a metrics collector is armed (via
// Config.Metrics or obs.SetGlobal), Run additionally measures each slot's
// busy time and the invocation's wall span, and — when the collector asks
// for it — runs every slot under pprof labels plan=<name>, phase=<phase>.
func Run(cfg Config, plan Plan) error {
	if plan.Body == nil {
		return errors.New("exec: plan " + plan.Name + " has no body")
	}
	if plan.Name == "" {
		return errors.New("exec: plan has no name (Plan.Name is required: it keys fault sites, panic attribution, and metrics)")
	}
	site := faultinject.RegisterPlan(plan.Name)
	if IsCanceled(cfg.Ctx) {
		return Cause(cfg.Ctx)
	}
	workers := plan.Workers
	if workers <= 0 {
		workers = cfg.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	items := plan.Items
	if plan.Partition == PerWorker {
		items = workers
	} else if workers > items {
		workers = items
	}
	if items <= 0 {
		return nil
	}
	chunk := plan.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	every := plan.CheckEvery
	if every <= 0 {
		every = DefaultCheckEvery
	}

	// Recorder set: the config's collector plus the process-global one
	// (deduplicated). The disarmed path is this nil check and one atomic
	// load; Worker.Tick is untouched either way.
	var recs [2]*obs.Metrics
	nrec := 0
	if cfg.Metrics != nil {
		recs[nrec] = cfg.Metrics
		nrec++
	}
	if g := obs.Global(); g != nil && g != cfg.Metrics {
		recs[nrec] = g
		nrec++
	}

	ws := make([]*Worker, workers)
	errs := make([]error, workers)
	var failed atomic.Bool
	var cursor atomic.Int64

	runSlot := func(slot int) {
		// LIFO: capturePanic (which must be deferred directly for its
		// recover to take effect) runs first, then the failure flag is
		// raised so Chunked co-workers stop claiming chunks.
		defer func() {
			if errs[slot] != nil {
				failed.Store(true)
			}
		}()
		defer capturePanic(&errs[slot], plan.Name)
		w := &Worker{Index: slot, ctx: cfg.Ctx, every: every, site: site}
		ws[slot] = w
		if plan.Scratch != nil {
			if err := plan.Scratch(w); err != nil {
				errs[slot] = err
				failed.Store(true)
				return
			}
		}
		var err error
		switch plan.Partition {
		case Chunked:
			for err == nil && !failed.Load() {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= items {
					break
				}
				err = plan.Body(w, lo, min(lo+chunk, items))
			}
		case PerWorker:
			err = plan.Body(w, slot, slot+1)
		default:
			lo, hi := ChunkRange(items, workers, slot)
			err = plan.Body(w, lo, hi)
		}
		if err != nil {
			errs[slot] = err
			failed.Store(true)
		}
	}

	slotFn := runSlot
	var busy []int64
	var spanStart time.Time
	if nrec > 0 {
		busy = make([]int64, workers)
		inner := slotFn
		// Per-slot busy time: written by the slot's goroutine, read after
		// the dispatch join (which provides the happens-before edge).
		slotFn = func(slot int) {
			t := time.Now()
			inner(slot)
			busy[slot] = time.Since(t).Nanoseconds()
		}
		for i := 0; i < nrec; i++ {
			if recs[i].LabelsEnabled() {
				lctx := cfg.Ctx
				if lctx == nil {
					lctx = context.Background()
				}
				labels := pprof.Labels("plan", plan.Name, "phase", recs[i].Phase())
				timed := slotFn
				slotFn = func(slot int) {
					pprof.Do(lctx, labels, func(context.Context) { timed(slot) })
				}
				break
			}
		}
		spanStart = time.Now()
	}

	if workers <= 1 {
		slotFn(0)
	} else {
		cfg.Pool.dispatch(workers, slotFn)
	}
	if plan.Finish != nil {
		for _, w := range ws {
			if w != nil {
				plan.Finish(w)
			}
		}
	}
	if nrec > 0 {
		span := time.Since(spanStart).Nanoseconds()
		for i := 0; i < nrec; i++ {
			recs[i].RecordPlan(plan.Name, workers, items, span, busy)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FireOutput fires the output inspection sites for a finished result: the
// generic kernels.output site first (preserving counts seen by existing
// fault-matrix tests), then the plan-scoped output site.
func FireOutput(plan string, payload any) error {
	faultinject.RegisterPlan(plan)
	if err := faultinject.Fire(faultinject.SiteKernelOutput, payload); err != nil {
		return err
	}
	return faultinject.Fire(faultinject.PlanOutputSite(plan), payload)
}
