package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/symprop/symprop/internal/faultinject"
)

// checkGoroutines fails the test if goroutines leaked past the pool's
// teardown (pooled workers must exit on Close; transient workers must have
// joined before Run/For/Chunks returns).
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

func TestChunkRange(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 3}, {1, 1}, {5, 2}, {7, 3}, {8, 8}, {100, 7}, {64, 1},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for w := 0; w < tc.workers; w++ {
			lo, hi := ChunkRange(tc.n, tc.workers, w)
			if lo != prevHi {
				t.Fatalf("n=%d workers=%d w=%d: lo=%d want %d (contiguity)", tc.n, tc.workers, w, lo, prevHi)
			}
			prevHi = hi
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d workers=%d: ranges end at %d, want %d", tc.n, tc.workers, prevHi, tc.n)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: item %d covered %d times", tc.n, tc.workers, i, c)
			}
		}
		// Balance: shares differ by at most one item.
		if tc.workers > 0 && tc.n > 0 {
			minSz, maxSz := tc.n, 0
			for w := 0; w < tc.workers; w++ {
				lo, hi := ChunkRange(tc.n, tc.workers, w)
				if hi-lo < minSz {
					minSz = hi - lo
				}
				if hi-lo > maxSz {
					maxSz = hi - lo
				}
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d workers=%d: unbalanced shares min=%d max=%d", tc.n, tc.workers, minSz, maxSz)
			}
		}
	}
}

func TestPoolLifecycle(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	var hits atomic.Int64
	p.dispatch(3, func(int) { hits.Add(1) })
	if hits.Load() != 3 {
		t.Fatalf("dispatch ran %d slots, want 3", hits.Load())
	}
	p.Close()
	p.Close() // idempotent

	// A closed pool still fans out, via transient goroutines.
	hits.Store(0)
	p.dispatch(4, func(int) { hits.Add(1) })
	if hits.Load() != 4 {
		t.Fatalf("closed-pool dispatch ran %d slots, want 4", hits.Load())
	}
}

func TestNilPool(t *testing.T) {
	checkGoroutines(t)
	var p *Pool
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d, want 0", p.Size())
	}
	p.Close() // nil-safe
	var hits atomic.Int64
	p.dispatch(4, func(int) { hits.Add(1) })
	if hits.Load() != 4 {
		t.Fatalf("nil-pool dispatch ran %d slots, want 4", hits.Load())
	}
}

func TestNewPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Size() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size = %d, want GOMAXPROCS = %d", p.Size(), runtime.GOMAXPROCS(0))
	}
}

// coverAll checks that a fan-out primitive touches every item exactly once.
func coverAll(t *testing.T, n int, run func(mark func(lo, hi int))) {
	t.Helper()
	covered := make([]atomic.Int32, n)
	run(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if c := covered[i].Load(); c != 1 {
			t.Fatalf("item %d covered %d times", i, c)
		}
	}
}

func TestForCoversAll(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 3, 64, 1001} {
		for _, workers := range []int{0, 1, 2, 7} {
			coverAll(t, n, func(mark func(lo, hi int)) { For(p, n, workers, mark) })
			coverAll(t, n, func(mark func(lo, hi int)) { For(nil, n, workers, mark) })
		}
	}
}

func TestChunksCoversAll(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		for _, workers := range []int{0, 1, 2, 7} {
			for _, chunk := range []int{0, 1, 16, 200} {
				coverAll(t, n, func(mark func(lo, hi int)) { Chunks(p, n, workers, chunk, mark) })
			}
		}
	}
}

func TestRunStaticCoversAll(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	for _, workers := range []int{1, 2, 7} {
		covered := make([]atomic.Int32, 100)
		err := Run(Config{Workers: workers, Pool: p}, Plan{
			Name:  "test.static",
			Items: len(covered),
			Body: func(w *Worker, lo, hi int) error {
				for i := lo; i < hi; i++ {
					if err := w.Tick(i); err != nil {
						return err
					}
					covered[i].Add(1)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range covered {
			if c := covered[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestRunChunkedCoversAll(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	defer p.Close()
	covered := make([]atomic.Int32, 500)
	err := Run(Config{Workers: 3, Pool: p}, Plan{
		Name:      "test.chunked",
		Items:     len(covered),
		Partition: Chunked,
		Chunk:     32,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range covered {
		if c := covered[i].Load(); c != 1 {
			t.Fatalf("item %d covered %d times", i, c)
		}
	}
}

func TestRunPerWorker(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	// PerWorker must run exactly Workers slots with Body(w, slot, slot+1),
	// even when Items is left zero — the slots ARE the items.
	var slots [5]atomic.Int32
	err := Run(Config{Pool: p}, Plan{
		Name:      "test.perworker",
		Partition: PerWorker,
		Workers:   5,
		Body: func(w *Worker, lo, hi int) error {
			if lo != w.Index || hi != lo+1 {
				return fmt.Errorf("slot %d got range [%d,%d)", w.Index, lo, hi)
			}
			slots[lo].Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range slots {
		if c := slots[i].Load(); c != 1 {
			t.Fatalf("slot %d ran %d times, want 1", i, c)
		}
	}
}

func TestRunNoBody(t *testing.T) {
	if err := Run(Config{}, Plan{Name: "test.nobody"}); err == nil {
		t.Fatal("Run with nil Body succeeded")
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	err := Run(Config{Workers: 4}, Plan{
		Name: "test.empty",
		Body: func(w *Worker, lo, hi int) error { called = true; return nil },
	})
	if err != nil || called {
		t.Fatalf("err=%v called=%v; want nil, false", err, called)
	}
}

func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("budget blown")
	cancel(cause)
	called := false
	err := Run(Config{Ctx: ctx, Workers: 2}, Plan{
		Name:  "test.precanceled",
		Items: 10,
		Body:  func(w *Worker, lo, hi int) error { called = true; return nil },
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cause %v", err, cause)
	}
	if called {
		t.Fatal("body ran under a pre-canceled context")
	}
}

func TestRunCancelMidRun(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ticked atomic.Int64
	err := Run(Config{Ctx: ctx, Workers: 2, Pool: p}, Plan{
		Name:       "test.cancelmid",
		Items:      10_000,
		CheckEvery: 1,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := w.Tick(i); err != nil {
					return err
				}
				if ticked.Add(1) == 5 {
					cancel()
				}
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ticked.Load(); n >= 10_000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestRunPanicCaptured(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	defer p.Close()
	err := Run(Config{Workers: 3, Pool: p}, Plan{
		Name:  "test.panic",
		Items: 300,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i == 150 {
					panic("kaboom")
				}
			}
			return nil
		},
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not *PanicError", err)
	}
	if pe.Plan != "test.panic" {
		t.Fatalf("PanicError.Plan = %q, want test.panic", pe.Plan)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("PanicError.Value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty")
	}
}

func TestRunErrorBySlotOrder(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(4)
	defer p.Close()
	// Every slot errors; Run must deterministically surface slot 0's error
	// regardless of which worker finished first.
	for trial := 0; trial < 20; trial++ {
		err := Run(Config{Workers: 4, Pool: p}, Plan{
			Name:      "test.errorder",
			Partition: PerWorker,
			Body: func(w *Worker, lo, hi int) error {
				return fmt.Errorf("slot %d failed", w.Index)
			},
		})
		if err == nil || err.Error() != "slot 0 failed" {
			t.Fatalf("trial %d: err = %v, want slot 0 failed", trial, err)
		}
	}
}

func TestRunScratchErrorAborts(t *testing.T) {
	boom := errors.New("no scratch")
	bodyRan := false
	err := Run(Config{Workers: 1}, Plan{
		Name:    "test.scratcherr",
		Items:   10,
		Scratch: func(w *Worker) error { return boom },
		Body:    func(w *Worker, lo, hi int) error { bodyRan = true; return nil },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if bodyRan {
		t.Fatal("body ran after Scratch failed")
	}
}

func TestRunScratchAndFinishPerSlot(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(3)
	defer p.Close()
	var scratched atomic.Int64
	var finishOrder []int
	err := Run(Config{Workers: 3, Pool: p}, Plan{
		Name:      "test.scratchfinish",
		Partition: PerWorker,
		Scratch: func(w *Worker) error {
			scratched.Add(1)
			w.Scratch = w.Index * 10
			return nil
		},
		Body: func(w *Worker, lo, hi int) error {
			if w.Scratch.(int) != w.Index*10 {
				return fmt.Errorf("slot %d saw scratch %v", w.Index, w.Scratch)
			}
			return nil
		},
		Finish: func(w *Worker) { finishOrder = append(finishOrder, w.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if scratched.Load() != 3 {
		t.Fatalf("Scratch ran %d times, want 3", scratched.Load())
	}
	if len(finishOrder) != 3 || finishOrder[0] != 0 || finishOrder[1] != 1 || finishOrder[2] != 2 {
		t.Fatalf("Finish order = %v, want [0 1 2]", finishOrder)
	}
}

func TestRunFinishRunsOnError(t *testing.T) {
	checkGoroutines(t)
	p := NewPool(2)
	defer p.Close()
	var finished atomic.Int64
	err := Run(Config{Workers: 2, Pool: p}, Plan{
		Name:      "test.finisherr",
		Partition: PerWorker,
		Body: func(w *Worker, lo, hi int) error {
			if w.Index == 1 {
				return errors.New("slot 1 died")
			}
			return nil
		},
		Finish: func(w *Worker) { finished.Add(1) },
	})
	if err == nil {
		t.Fatal("want error")
	}
	if finished.Load() != 2 {
		t.Fatalf("Finish ran for %d slots, want 2 (teardown must not leak on error)", finished.Load())
	}
}

func TestRunFaultSites(t *testing.T) {
	// The generic worker site and the plan-scoped site both fire per item.
	genericHook, genericHits := faultinject.Counter()
	defer faultinject.Arm(faultinject.SiteKernelWorker, genericHook)()
	scopedHook, scopedHits := faultinject.Counter()
	defer faultinject.Arm(faultinject.PlanWorkerSite("test.sites"), scopedHook)()
	err := Run(Config{Workers: 1}, Plan{
		Name:  "test.sites",
		Items: 7,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := w.Tick(i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if genericHits() != 7 {
		t.Fatalf("generic worker site fired %d times, want 7", genericHits())
	}
	if scopedHits() != 7 {
		t.Fatalf("plan-scoped worker site fired %d times, want 7", scopedHits())
	}
	found := false
	for _, name := range faultinject.Plans() {
		if name == "test.sites" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan test.sites missing from registry %v", faultinject.Plans())
	}
}

func TestRunPlanScopedError(t *testing.T) {
	boom := errors.New("scoped hit")
	defer faultinject.Arm(faultinject.PlanWorkerSite("test.scopederr"),
		faultinject.OnHit(3, func(any) error { return boom }))()
	err := Run(Config{Workers: 1}, Plan{
		Name:  "test.scopederr",
		Items: 10,
		Body: func(w *Worker, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := w.Tick(i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestFireOutput(t *testing.T) {
	genericHook, genericHits := faultinject.Counter()
	defer faultinject.Arm(faultinject.SiteKernelOutput, genericHook)()
	scopedHook, scopedHits := faultinject.Counter()
	defer faultinject.Arm(faultinject.PlanOutputSite("test.out"), scopedHook)()
	if err := FireOutput("test.out", nil); err != nil {
		t.Fatal(err)
	}
	if genericHits() != 1 || scopedHits() != 1 {
		t.Fatalf("output sites fired generic=%d scoped=%d, want 1/1", genericHits(), scopedHits())
	}
}

func TestCauseAndIsCanceled(t *testing.T) {
	if IsCanceled(nil) {
		t.Fatal("nil context reported canceled")
	}
	if Cause(nil) != nil {
		t.Fatal("nil context has a cause")
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	if IsCanceled(ctx) {
		t.Fatal("live context reported canceled")
	}
	want := errors.New("the reason")
	cancel(want)
	if !IsCanceled(ctx) {
		t.Fatal("canceled context not reported")
	}
	if got := Cause(ctx); !errors.Is(got, want) {
		t.Fatalf("Cause = %v, want %v", got, want)
	}
	plain, cancelPlain := context.WithCancel(context.Background())
	cancelPlain()
	if got := Cause(plain); !errors.Is(got, context.Canceled) {
		t.Fatalf("Cause = %v, want context.Canceled", got)
	}
}

func TestFirstNonFinite(t *testing.T) {
	if i := FirstNonFinite([]float64{1, 2, 3}); i != -1 {
		t.Fatalf("finite slice: got %d, want -1", i)
	}
	if i := FirstNonFinite([]float64{1, math.NaN(), math.Inf(1)}); i != 1 {
		t.Fatalf("NaN at 1: got %d", i)
	}
	if i := FirstNonFinite([]float64{math.Inf(-1)}); i != 0 {
		t.Fatalf("-Inf at 0: got %d", i)
	}
	if i := FirstNonFinite(nil); i != -1 {
		t.Fatalf("nil slice: got %d, want -1", i)
	}
}
