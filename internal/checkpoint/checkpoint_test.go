package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/symprop/symprop/internal/linalg"
)

func sampleState() *State {
	u := linalg.NewMatrix(4, 3)
	for i := range u.Data {
		u.Data[i] = float64(i) * 1.25e-3
	}
	u.Data[5] = math.Nextafter(1, 2) // a value whose bits matter
	return &State{
		Algo:        "hoqri",
		Fingerprint: 0xdeadbeefcafef00d,
		Iteration:   4,
		Seed:        -42,
		U:           u,
		Objective:   []float64{3.5, 2.25, 2.0 + 1e-16, 1.125},
		RelError:    []float64{0.9, 0.5, 0.25, 0.125},
	}
}

func TestRoundTripBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algo != want.Algo || got.Fingerprint != want.Fingerprint ||
		got.Iteration != want.Iteration || got.Seed != want.Seed {
		t.Errorf("header fields differ: %+v vs %+v", got, want)
	}
	if got.U.Rows != want.U.Rows || got.U.Cols != want.U.Cols {
		t.Fatalf("U shape %dx%d, want %dx%d", got.U.Rows, got.U.Cols, want.U.Rows, want.U.Cols)
	}
	for i := range want.U.Data {
		if math.Float64bits(got.U.Data[i]) != math.Float64bits(want.U.Data[i]) {
			t.Fatalf("U bit mismatch at %d", i)
		}
	}
	for i := range want.Objective {
		if math.Float64bits(got.Objective[i]) != math.Float64bits(want.Objective[i]) ||
			math.Float64bits(got.RelError[i]) != math.Float64bits(want.RelError[i]) {
			t.Fatalf("trace bit mismatch at %d", i)
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := sampleState()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	s.Iteration = 5
	s.Objective = append(s.Objective, 1.0)
	s.RelError = append(s.RelError, 0.1)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 5 || len(got.Objective) != 5 {
		t.Errorf("second snapshot not visible: iter %d, %d entries", got.Iteration, len(got.Objective))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("want os.ErrNotExist, got %v", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Error("a missing file must not be reported as corruption")
	}
}

// Every single-byte corruption and every truncation must surface as
// ErrCheckpointCorrupt, never as a bogus State or a panic.
func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, raw []byte) {
		t.Helper()
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: want ErrCheckpointCorrupt, got %v", name, err)
		}
	}

	// Flip one byte at a selection of offsets across all regions.
	for _, off := range []int{0, 7, 8, 20, 40, len(pristine) / 2, len(pristine) - 2} {
		raw := append([]byte(nil), pristine...)
		raw[off] ^= 0x5a
		check("flip@"+string(rune('0'+off%10)), raw)
	}
	// Truncations.
	for _, n := range []int{0, 5, 16, len(pristine) - 1} {
		check("truncate", pristine[:n])
	}
	// Oversized length field claiming more than the file holds.
	raw := append([]byte(nil), pristine...)
	raw[8] = 0xff
	raw[14] = 0xff
	check("length bomb", raw)
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[7] = 99
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("future version must be rejected: %v", err)
	}
}

func TestInconsistentTracesRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	s := sampleState()
	s.RelError = s.RelError[:2] // shorter than Objective
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("mismatched trace lengths must be rejected: %v", err)
	}
}
