package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/symprop/symprop/internal/linalg"
	"github.com/symprop/symprop/internal/obs"
)

func sampleState() *State {
	u := linalg.NewMatrix(4, 3)
	for i := range u.Data {
		u.Data[i] = float64(i) * 1.25e-3
	}
	u.Data[5] = math.Nextafter(1, 2) // a value whose bits matter
	return &State{
		Algo:        "hoqri",
		Fingerprint: 0xdeadbeefcafef00d,
		Iteration:   4,
		Seed:        -42,
		U:           u,
		Objective:   []float64{3.5, 2.25, 2.0 + 1e-16, 1.125},
		RelError:    []float64{0.9, 0.5, 0.25, 0.125},
		Trace: []obs.TraceEvent{
			{Sweep: 3, Objective: 1.125, RelError: 0.125, Fit: 0.875, WallNs: 12345,
				Plans:  map[string]obs.PlanDelta{"s3ttmc.owner": {Invocations: 1, Items: 500, BusyNs: 9000, SpanNs: 10000}},
				Health: []string{"iteration 3: something happened"}},
		},
	}
}

func TestRoundTripBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algo != want.Algo || got.Fingerprint != want.Fingerprint ||
		got.Iteration != want.Iteration || got.Seed != want.Seed {
		t.Errorf("header fields differ: %+v vs %+v", got, want)
	}
	if got.U.Rows != want.U.Rows || got.U.Cols != want.U.Cols {
		t.Fatalf("U shape %dx%d, want %dx%d", got.U.Rows, got.U.Cols, want.U.Rows, want.U.Cols)
	}
	for i := range want.U.Data {
		if math.Float64bits(got.U.Data[i]) != math.Float64bits(want.U.Data[i]) {
			t.Fatalf("U bit mismatch at %d", i)
		}
	}
	for i := range want.Objective {
		if math.Float64bits(got.Objective[i]) != math.Float64bits(want.Objective[i]) ||
			math.Float64bits(got.RelError[i]) != math.Float64bits(want.RelError[i]) {
			t.Fatalf("trace bit mismatch at %d", i)
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := sampleState()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	s.Iteration = 5
	s.Objective = append(s.Objective, 1.0)
	s.RelError = append(s.RelError, 0.1)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 5 || len(got.Objective) != 5 {
		t.Errorf("second snapshot not visible: iter %d, %d entries", got.Iteration, len(got.Objective))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("want os.ErrNotExist, got %v", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Error("a missing file must not be reported as corruption")
	}
}

// Every single-byte corruption and every truncation must surface as
// ErrCheckpointCorrupt, never as a bogus State or a panic.
func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, raw []byte) {
		t.Helper()
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: want ErrCheckpointCorrupt, got %v", name, err)
		}
	}

	// Flip one byte at a selection of offsets across all regions.
	for _, off := range []int{0, 7, 8, 20, 40, len(pristine) / 2, len(pristine) - 2} {
		raw := append([]byte(nil), pristine...)
		raw[off] ^= 0x5a
		check("flip@"+string(rune('0'+off%10)), raw)
	}
	// Truncations.
	for _, n := range []int{0, 5, 16, len(pristine) - 1} {
		check("truncate", pristine[:n])
	}
	// Oversized length field claiming more than the file holds.
	raw := append([]byte(nil), pristine...)
	raw[8] = 0xff
	raw[14] = 0xff
	check("length bomb", raw)
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[7] = 99
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("future version must be rejected: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace) != 1 {
		t.Fatalf("got %d trace events, want 1", len(got.Trace))
	}
	ev, wantEv := got.Trace[0], want.Trace[0]
	if ev.Sweep != wantEv.Sweep || ev.WallNs != wantEv.WallNs || ev.Fit != wantEv.Fit {
		t.Errorf("trace event mismatch: %+v vs %+v", ev, wantEv)
	}
	if d := ev.Plans["s3ttmc.owner"]; d != wantEv.Plans["s3ttmc.owner"] {
		t.Errorf("plan delta mismatch: %+v", d)
	}
	if len(ev.Health) != 1 || ev.Health[0] != wantEv.Health[0] {
		t.Errorf("health events mismatch: %v", ev.Health)
	}
}

// TestVersion1StillLoads rebuilds a pre-trace (version 1) snapshot from a
// current one — strip the length-prefixed JSON trailer, flip the version
// byte, refresh length and CRC — and expects Load to accept it with an
// empty trace.
func TestVersion1StillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := raw[16 : len(raw)-4]
	traceJSON, err := json.Marshal(want.Trace)
	if err != nil {
		t.Fatal(err)
	}
	v1payload := payload[: len(payload)-8-len(traceJSON) : len(payload)-8-len(traceJSON)]
	v1 := append([]byte(nil), raw[:8]...)
	v1[7] = 1
	v1 = binary.LittleEndian.AppendUint64(v1, uint64(len(v1payload)))
	v1 = append(v1, v1payload...)
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.ChecksumIEEE(v1payload))
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("version-1 snapshot must still load: %v", err)
	}
	if got.Iteration != want.Iteration || len(got.Objective) != len(want.Objective) {
		t.Errorf("v1 fields lost: %+v", got)
	}
	if len(got.Trace) != 0 {
		t.Errorf("v1 snapshot should restore an empty trace, got %d events", len(got.Trace))
	}
}

func TestInconsistentTracesRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	s := sampleState()
	s.RelError = s.RelError[:2] // shorter than Objective
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("mismatched trace lengths must be rejected: %v", err)
	}
}
