// Package checkpoint persists Tucker iteration state so long decomposition
// runs can be interrupted and resumed bit-identically. A snapshot holds the
// current factor U, the completed iteration count, the full objective and
// relative-error traces, the run's seed (all driver randomness — including
// jittered numeric-recovery restarts — is derived deterministically from
// (seed, iteration), so the seed is the complete RNG state), and a
// fingerprint of the (tensor, options) configuration that must match on
// resume.
//
// The on-disk format is deliberately boring and self-verifying:
//
//	offset  size  field
//	0       8     magic "SYMCKPT" + version byte (currently 2)
//	8       8     payload length, little-endian uint64
//	16      n     payload (fixed-width little-endian fields, see encode)
//	16+n    4     CRC-32 (IEEE) of the payload, little-endian
//
// Version 2 appends the run's observability trace (Result.Trace, one event
// per completed sweep) to the payload as a length-prefixed JSON blob, so a
// resumed run's trace continues where the interrupted one stopped. Version
// 1 snapshots (no trace) still load — the trace restores as empty.
//
// Save writes to a temp file in the target directory, syncs, closes, and
// renames — so a crash mid-write leaves either the previous snapshot or
// none, never a torn one. Load verifies magic, version, length, and CRC and
// returns ErrCheckpointCorrupt (wrapped, with detail) on any mismatch, so
// callers can distinguish "corrupt snapshot" from I/O errors.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/symprop/symprop/internal/linalg"
	"github.com/symprop/symprop/internal/obs"
)

// ErrCheckpointCorrupt marks a snapshot that exists but fails structural
// validation (bad magic, truncated payload, CRC mismatch, impossible
// field values). Detect it with errors.Is.
var ErrCheckpointCorrupt = errors.New("checkpoint: corrupt or truncated snapshot")

// ErrMismatch marks a structurally valid snapshot whose fingerprint does
// not match the run it is being resumed into (different tensor, rank,
// worker count, scheduling, seed, or algorithm).
var ErrMismatch = errors.New("checkpoint: snapshot does not match run configuration")

const (
	magic   = "SYMCKPT"
	version = 2
	// minVersion is the oldest snapshot version Load still accepts
	// (version 1 lacks the trailing trace blob).
	minVersion = 1
	// maxSnapshotBytes bounds Load's allocation so a corrupt length field
	// cannot become an allocation bomb (the same defense the binary tensor
	// reader grew after fuzzing).
	maxSnapshotBytes = 1 << 32
)

// State is one resumable snapshot of a Tucker driver run.
type State struct {
	// Algo is the driver name ("hooi", "hoqri", ...); resuming into a
	// different driver is refused via the fingerprint.
	Algo string
	// Fingerprint hashes the (tensor, options) configuration; see
	// tucker.Options. Resume verifies it before trusting U.
	Fingerprint uint64
	// Iteration is the number of fully completed iterations; the resumed
	// loop starts at this index.
	Iteration int
	// Seed is the run's RNG seed. All randomness after initialization is
	// derived from (Seed, iteration), so no generator state is stored.
	Seed int64
	// U is the factor matrix as of Iteration.
	U *linalg.Matrix
	// Objective and RelError are the full per-iteration traces up to and
	// including Iteration, restored verbatim so a resumed run's trace is
	// bit-identical to an uninterrupted one.
	Objective []float64
	RelError  []float64
	// Trace is the observability iteration trace (one event per completed
	// sweep, tucker Result.Trace), stored as JSON since version 2 so a
	// resumed run extends it instead of restarting it. Unlike the numeric
	// traces it carries wall-clock timings and is informational: it is not
	// covered by the bit-identity resume guarantee.
	Trace []obs.TraceEvent
}

func (s *State) encode() []byte {
	size := 8 + // fingerprint
		8 + len(s.Algo) + // algo
		8 + // iteration
		8 + // seed
		16 + 8*len(s.U.Data) + // U dims + data
		8 + 8*len(s.Objective) +
		8 + 8*len(s.RelError)
	buf := make([]byte, 0, size)
	le := binary.LittleEndian
	u64 := func(v uint64) { buf = le.AppendUint64(buf, v) }
	floats := func(fs []float64) {
		u64(uint64(len(fs)))
		for _, f := range fs {
			u64(math.Float64bits(f))
		}
	}
	u64(s.Fingerprint)
	u64(uint64(len(s.Algo)))
	buf = append(buf, s.Algo...)
	u64(uint64(s.Iteration))
	u64(uint64(s.Seed))
	u64(uint64(s.U.Rows))
	u64(uint64(s.U.Cols))
	for _, f := range s.U.Data {
		u64(math.Float64bits(f))
	}
	floats(s.Objective)
	floats(s.RelError)
	// Version 2 trailer: the observability trace as length-prefixed JSON.
	// JSON (not fixed-width fields) because TraceEvent carries maps and
	// strings and evolves with the obs schema; the CRC still covers it.
	trace, err := json.Marshal(s.Trace)
	if err != nil {
		trace = []byte("null")
	}
	u64(uint64(len(trace)))
	buf = append(buf, trace...)
	return buf
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCheckpointCorrupt)
}

func decode(buf []byte, ver byte) (*State, error) {
	le := binary.LittleEndian
	pos := 0
	u64 := func(what string) (uint64, error) {
		if pos+8 > len(buf) {
			return 0, corrupt("checkpoint: payload truncated reading %s", what)
		}
		v := le.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}
	count := func(what string) (int, error) {
		v, err := u64(what)
		if err != nil {
			return 0, err
		}
		if v > uint64(len(buf)/8) {
			return 0, corrupt("checkpoint: %s count %d exceeds payload", what, v)
		}
		return int(v), nil
	}
	floats := func(what string) ([]float64, error) {
		n, err := count(what)
		if err != nil {
			return nil, err
		}
		fs := make([]float64, n)
		for i := range fs {
			v, err := u64(what)
			if err != nil {
				return nil, err
			}
			fs[i] = math.Float64frombits(v)
		}
		return fs, nil
	}

	s := &State{}
	var err error
	if s.Fingerprint, err = u64("fingerprint"); err != nil {
		return nil, err
	}
	algoLen, err := count("algo length")
	if err != nil {
		return nil, err
	}
	if pos+algoLen > len(buf) {
		return nil, corrupt("checkpoint: payload truncated reading algo")
	}
	s.Algo = string(buf[pos : pos+algoLen])
	pos += algoLen
	iter, err := u64("iteration")
	if err != nil {
		return nil, err
	}
	s.Iteration = int(iter)
	seed, err := u64("seed")
	if err != nil {
		return nil, err
	}
	s.Seed = int64(seed)
	rows, err := count("U rows")
	if err != nil {
		return nil, err
	}
	cols, err := count("U cols")
	if err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || (cols != 0 && rows > len(buf)/8/cols) {
		return nil, corrupt("checkpoint: factor shape %dx%d exceeds payload", rows, cols)
	}
	data := make([]float64, rows*cols)
	for i := range data {
		v, err := u64("U data")
		if err != nil {
			return nil, err
		}
		data[i] = math.Float64frombits(v)
	}
	s.U = linalg.NewMatrixFrom(rows, cols, data)
	if s.Objective, err = floats("objective trace"); err != nil {
		return nil, err
	}
	if s.RelError, err = floats("relative-error trace"); err != nil {
		return nil, err
	}
	if ver >= 2 {
		traceLen, err := u64("trace length")
		if err != nil {
			return nil, err
		}
		if traceLen > uint64(len(buf)-pos) {
			return nil, corrupt("checkpoint: trace blob length %d exceeds payload", traceLen)
		}
		blob := buf[pos : pos+int(traceLen)]
		pos += int(traceLen)
		if err := json.Unmarshal(blob, &s.Trace); err != nil {
			return nil, corrupt("checkpoint: trace blob is not valid JSON: %v", err)
		}
	}
	if pos != len(buf) {
		return nil, corrupt("checkpoint: %d trailing payload bytes", len(buf)-pos)
	}
	if len(s.Objective) != len(s.RelError) || s.Iteration < 0 || len(s.Objective) < s.Iteration {
		return nil, corrupt("checkpoint: inconsistent traces (iteration %d, %d objective, %d relerror entries)",
			s.Iteration, len(s.Objective), len(s.RelError))
	}
	return s, nil
}

// Save atomically writes s to path: temp file in the same directory, sync,
// rename. An existing snapshot at path is replaced only after the new one
// is fully on disk.
func Save(path string, s *State) error {
	payload := s.encode()
	le := binary.LittleEndian
	buf := make([]byte, 0, 16+len(payload)+4)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = le.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and verifies a snapshot. I/O failures come back as-is
// (errors.Is(err, os.ErrNotExist) distinguishes "no snapshot yet");
// structural failures wrap ErrCheckpointCorrupt.
func Load(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16+4 {
		return nil, corrupt("checkpoint: file is %d bytes, smaller than any valid snapshot", len(raw))
	}
	if string(raw[:7]) != magic {
		return nil, corrupt("checkpoint: bad magic %q", raw[:7])
	}
	if raw[7] < minVersion || raw[7] > version {
		return nil, corrupt("checkpoint: unsupported version %d (want %d..%d)", raw[7], minVersion, version)
	}
	payloadLen := binary.LittleEndian.Uint64(raw[8:16])
	if payloadLen > maxSnapshotBytes || 16+payloadLen+4 != uint64(len(raw)) {
		return nil, corrupt("checkpoint: payload length %d inconsistent with %d-byte file", payloadLen, len(raw))
	}
	payload := raw[16 : 16+payloadLen]
	wantCRC := binary.LittleEndian.Uint32(raw[16+payloadLen:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, corrupt("checkpoint: CRC mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	return decode(payload, raw[7])
}
