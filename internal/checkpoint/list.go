package checkpoint

// Spool enumeration: List scans a directory for SYMCKPT snapshots so a
// job server (internal/jobs) restarting after a crash can discover which
// runs are resumable. Non-snapshot files ("foreign": editor droppings,
// manifests, tensors sharing the spool directory) and corrupt snapshots
// are reported per entry with typed errors — never a panic and never an
// aborted scan, because one bad file must not make every other job's
// state unreachable.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrNotSnapshot marks a file that is not a SYMCKPT snapshot at all (too
// short to hold the magic, or wrong magic) — as opposed to a snapshot
// that is recognizably ours but damaged, which is ErrCheckpointCorrupt.
// Detect it with errors.Is.
var ErrNotSnapshot = errors.New("checkpoint: not a snapshot file")

// ListEntry is one regular file List inspected.
type ListEntry struct {
	// Path is the file's full path (dir joined with its name).
	Path string
	// State is the decoded snapshot when Err is nil, otherwise nil.
	State *State
	// Err classifies an unusable file: errors.Is(Err, ErrNotSnapshot) for
	// foreign files, errors.Is(Err, ErrCheckpointCorrupt) for damaged
	// snapshots, or the underlying I/O error (e.g. a permission failure).
	Err error
}

// List inspects every regular file directly inside dir (subdirectories
// are not descended) and returns one entry per file, sorted by path.
// Foreign and corrupt files come back with a per-entry typed Err instead
// of failing the scan. Only reading the directory itself can fail.
func List(dir string) ([]ListEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", dir, err)
	}
	out := make([]ListEntry, 0, len(ents))
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if t := de.Type(); !t.IsRegular() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		e := ListEntry{Path: path}
		e.State, e.Err = loadClassified(path)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// loadClassified is Load with the foreign/corrupt distinction List needs:
// a file that never was a snapshot gets ErrNotSnapshot rather than the
// corruption error Load reports for anything with a bad header.
func loadClassified(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(magic)+1 || string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("%s: %w", path, ErrNotSnapshot)
	}
	s, err := Load(path)
	if err != nil {
		return nil, err
	}
	return s, nil
}
