package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestListClassifiesEveryFile(t *testing.T) {
	dir := t.TempDir()

	// A valid snapshot.
	good := filepath.Join(dir, "a-good.ckpt")
	if err := Save(good, sampleState()); err != nil {
		t.Fatal(err)
	}
	// A corrupt snapshot: right magic, flipped payload byte (CRC mismatch).
	corrupt := filepath.Join(dir, "b-corrupt.ckpt")
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[20] ^= 0xff
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// A truncated snapshot: magic intact but cut mid-payload.
	truncated := filepath.Join(dir, "c-truncated.ckpt")
	if err := os.WriteFile(truncated, raw[:24], 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign files: a manifest-looking JSON blob and a near-empty file.
	foreign := filepath.Join(dir, "d-job.json")
	if err := os.WriteFile(foreign, []byte(`{"state":"queued"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tiny := filepath.Join(dir, "e-tiny")
	if err := os.WriteFile(tiny, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A subdirectory must be skipped, not descended or reported.
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	got, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("List returned %d entries, want 5: %+v", len(got), got)
	}
	// Sorted by path, so the order is deterministic.
	wantPath := []string{good, corrupt, truncated, foreign, tiny}
	for i, e := range got {
		if e.Path != wantPath[i] {
			t.Errorf("entry %d path = %s, want %s", i, e.Path, wantPath[i])
		}
	}
	if got[0].Err != nil || got[0].State == nil {
		t.Errorf("valid snapshot: err=%v state=%v", got[0].Err, got[0].State)
	} else if got[0].State.Algo != "hoqri" || got[0].State.Iteration != 4 {
		t.Errorf("valid snapshot decoded wrong: %+v", got[0].State)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(got[i].Err, ErrCheckpointCorrupt) || got[i].State != nil {
			t.Errorf("entry %d (%s): err=%v, want ErrCheckpointCorrupt", i, got[i].Path, got[i].Err)
		}
		if errors.Is(got[i].Err, ErrNotSnapshot) {
			t.Errorf("entry %d: corrupt snapshot misclassified as foreign", i)
		}
	}
	for _, i := range []int{3, 4} {
		if !errors.Is(got[i].Err, ErrNotSnapshot) || got[i].State != nil {
			t.Errorf("entry %d (%s): err=%v, want ErrNotSnapshot", i, got[i].Path, got[i].Err)
		}
		if errors.Is(got[i].Err, ErrCheckpointCorrupt) {
			t.Errorf("entry %d: foreign file misclassified as corrupt", i)
		}
	}
}

func TestListEmptyAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	got, err := List(dir)
	if err != nil || len(got) != 0 {
		t.Errorf("empty dir: entries=%v err=%v", got, err)
	}
	if _, err := List(filepath.Join(dir, "nope")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing dir: err=%v, want ErrNotExist", err)
	}
}
