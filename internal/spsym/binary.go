package spsym

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/symprop/symprop/internal/dense"
)

// Binary format: a compact little-endian serialization for large tensors
// where the text format's parse cost dominates loading. Layout:
//
//	magic   [8]byte  "SYMTNSR1"
//	order   uint32
//	dim     uint32
//	nnz     uint64
//	index   nnz*order * int32   (IOU tuples, lexicographically sorted)
//	values  nnz * float64
var binaryMagic = [8]byte{'S', 'Y', 'M', 'T', 'N', 'S', 'R', '1'}

// WriteBinary serializes t in the binary format. The tensor should be
// canonical; ReadBinary validates on load.
func (t *Tensor) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.Order))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.Dim))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range t.Index {
		binary.LittleEndian.PutUint32(buf, uint32(v))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range t.Values {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format and validates the result.
func ReadBinary(r io.Reader) (*Tensor, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("spsym: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("spsym: bad magic %q", magic[:])
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("spsym: binary header: %w", err)
	}
	order := int(binary.LittleEndian.Uint32(hdr[0:]))
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	nnz := binary.LittleEndian.Uint64(hdr[8:])
	if order < 1 || order > dense.MaxOrder || dim < 1 || nnz > (1<<40) {
		return nil, fmt.Errorf("spsym: implausible binary header order=%d dim=%d nnz=%d", order, dim, nnz)
	}
	// Never trust the header for a large up-front allocation (a crafted
	// header could demand terabytes): read in bounded chunks and grow with
	// the data that actually arrives, so truncated or hostile inputs fail
	// on a short read instead of an allocation bomb.
	t := New(order, dim)
	totalIdx := int(nnz) * order
	const chunkBytes = 1 << 20
	chunk := make([]byte, chunkBytes)
	for read := 0; read < totalIdx; {
		n := totalIdx - read
		if n > chunkBytes/4 {
			n = chunkBytes / 4
		}
		if _, err := io.ReadFull(br, chunk[:n*4]); err != nil {
			return nil, fmt.Errorf("spsym: binary index: %w", err)
		}
		for i := 0; i < n; i++ {
			t.Index = append(t.Index, int32(binary.LittleEndian.Uint32(chunk[i*4:])))
		}
		read += n
	}
	for read := 0; read < int(nnz); {
		n := int(nnz) - read
		if n > chunkBytes/8 {
			n = chunkBytes / 8
		}
		if _, err := io.ReadFull(br, chunk[:n*8]); err != nil {
			return nil, fmt.Errorf("spsym: binary values: %w", err)
		}
		for i := 0; i < n; i++ {
			t.Values = append(t.Values, math.Float64frombits(binary.LittleEndian.Uint64(chunk[i*8:])))
		}
		read += n
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("spsym: binary payload invalid: %w", err)
	}
	return t, nil
}

// SaveBinary writes t to the named file in the binary format.
func (t *Tensor) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a tensor from the named binary file.
func LoadBinary(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadAuto reads either format, sniffing the magic bytes.
func LoadAuto(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(8)
	if err == nil && len(head) == 8 && [8]byte(head[:8]) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadFrom(br)
}

// Degrees returns the number of IOU non-zeros touching each index value —
// the node degrees when the tensor is a hypergraph adjacency tensor.
func (t *Tensor) Degrees() []int64 {
	deg := make([]int64, t.Dim)
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		for i, v := range tuple {
			if i > 0 && v == tuple[i-1] {
				continue // count each non-zero once per distinct node
			}
			deg[v]++
		}
	}
	return deg
}
