package spsym

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestReadCOOSymmetricInput(t *testing.T) {
	// All 6 permutations of (1,2,3) plus a diagonal entry, 1-based.
	input := `1 2 3 5.0
1 3 2 5.0
2 1 3 5.0
2 3 1 5.0
3 1 2 5.0
3 2 1 5.0
2 2 2 7.0
`
	x, err := ReadCOO(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order != 3 || x.Dim != 3 || x.NNZ() != 2 {
		t.Fatalf("order=%d dim=%d nnz=%d", x.Order, x.Dim, x.NNZ())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// (0,1,2) -> 5.0; (1,1,1) -> 7.0.
	if x.Values[0] != 5.0 || x.Values[1] != 7.0 {
		t.Errorf("values = %v", x.Values)
	}
}

func TestReadCOOPartialPermutations(t *testing.T) {
	// Only one representative listed: still fine (count 1).
	x, err := ReadCOO(strings.NewReader("3 1 2 4.5\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 1 || x.Values[0] != 4.5 {
		t.Fatalf("nnz=%d values=%v", x.NNZ(), x.Values)
	}
	tuple := x.IndexAt(0)
	if tuple[0] != 0 || tuple[1] != 1 || tuple[2] != 2 {
		t.Errorf("tuple = %v, want [0 1 2]", tuple)
	}
}

func TestReadCOORejectsAsymmetric(t *testing.T) {
	input := "1 2 3.0\n2 1 4.0\n"
	if _, err := ReadCOO(strings.NewReader(input), 1e-9); err == nil {
		t.Error("asymmetric input must fail with non-negative tol")
	}
	// Forced symmetrization averages.
	x, err := ReadCOO(strings.NewReader(input), -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.Values[0]-3.5) > 1e-15 {
		t.Errorf("forced symmetrization value = %v, want 3.5", x.Values[0])
	}
}

func TestReadCOOToleranceAccepts(t *testing.T) {
	input := "1 2 3.0\n2 1 3.0000001\n"
	x, err := ReadCOO(strings.NewReader(input), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 1 {
		t.Fatal("near-duplicates should merge")
	}
}

func TestReadCOOErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"comments only": "# nothing\n",
		"no value":      "3\n",
		"bad index":     "x 2 1.0\n",
		"zero index":    "0 2 1.0\n",
		"bad value":     "1 2 abc\n",
		"ragged arity":  "1 2 1.0\n1 2 3 1.0\n",
	}
	for name, input := range cases {
		if _, err := ReadCOO(strings.NewReader(input), 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCOOMatchesRoundTrip(t *testing.T) {
	// Expand a random symmetric tensor to COO text and read it back.
	ts, err := Random(RandomOptions{Order: 3, Dim: 6, NNZ: 10, Seed: 5, Values: ValueNormal})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ts.ForEachExpanded(func(idx []int32, val float64) {
		for _, v := range idx {
			fmtInt(&sb, int(v)+1)
			sb.WriteByte(' ')
		}
		sb.WriteString(strconvFormat(val))
		sb.WriteByte('\n')
	})
	got, err := ReadCOO(strings.NewReader(sb.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != ts.NNZ() {
		t.Fatalf("nnz = %d, want %d", got.NNZ(), ts.NNZ())
	}
	for k := 0; k < ts.NNZ(); k++ {
		if math.Abs(got.Values[k]-ts.Values[k]) > 1e-12 {
			t.Fatalf("value %d = %v, want %v", k, got.Values[k], ts.Values[k])
		}
	}
}

func fmtInt(sb *strings.Builder, v int) {
	sb.WriteString(strconv.Itoa(v))
}

func strconvFormat(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

func TestNormalizeByDegree(t *testing.T) {
	ts := New(2, 3)
	ts.Append([]int{0, 1}, 4.0)
	ts.Append([]int{1, 2}, 9.0)
	ts.Canonicalize()
	// Degrees: node0=1, node1=2, node2=1.
	n := ts.NormalizeByDegree()
	// (0,1): 4/sqrt(1*2); (1,2): 9/sqrt(2*1).
	if math.Abs(n.Values[0]-4/math.Sqrt2) > 1e-15 {
		t.Errorf("value0 = %v", n.Values[0])
	}
	if math.Abs(n.Values[1]-9/math.Sqrt2) > 1e-15 {
		t.Errorf("value1 = %v", n.Values[1])
	}
	// Original untouched.
	if ts.Values[0] != 4.0 {
		t.Error("NormalizeByDegree must not mutate the receiver")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
