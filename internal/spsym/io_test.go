package spsym

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	ts, err := Random(RandomOptions{Order: 4, Dim: 7, NNZ: 25, Seed: 11, Values: ValueNormal})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order != ts.Order || got.Dim != ts.Dim || got.NNZ() != ts.NNZ() {
		t.Fatalf("shape mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			got.Order, got.Dim, got.NNZ(), ts.Order, ts.Dim, ts.NNZ())
	}
	for k := 0; k < ts.NNZ(); k++ {
		a, b := ts.IndexAt(k), got.IndexAt(k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-zero %d index mismatch: %v vs %v", k, a, b)
			}
		}
		if ts.Values[k] != got.Values[k] {
			t.Fatalf("non-zero %d value mismatch: %v vs %v", k, ts.Values[k], got.Values[k])
		}
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	input := `# a comment

sym 2 3 2
# another comment
1 2 1.5

3 3 -2.0
`
	ts, err := ReadFrom(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", ts.NNZ())
	}
	if ts.At0() != 1.5 {
		t.Fatalf("first value = %v, want 1.5", ts.At0())
	}
}

// At0 is a tiny test helper: the first stored value.
func (t *Tensor) At0() float64 { return t.Values[0] }

func TestReadUnsortedDuplicatesCanonicalized(t *testing.T) {
	input := "sym 2 3 3\n2 1 1.0\n1 2 2.0\n3 3 4.0\n"
	ts, err := ReadFrom(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after merging (1,2)+(2,1)", ts.NNZ())
	}
	if ts.Values[0] != 3.0 {
		t.Fatalf("merged value = %v, want 3", ts.Values[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header tag":    "coo 2 3 1\n1 2 1.0\n",
		"bad header arity":  "sym 2 3\n",
		"negative nnz":      "sym 2 3 -1\n",
		"bad index":         "sym 2 3 1\nx 2 1.0\n",
		"index too large":   "sym 2 3 1\n1 4 1.0\n",
		"index zero":        "sym 2 3 1\n0 2 1.0\n",
		"bad value":         "sym 2 3 1\n1 2 abc\n",
		"wrong field count": "sym 3 3 1\n1 2 1.0\n",
		"nnz mismatch":      "sym 2 3 5\n1 2 1.0\n",
	}
	for name, input := range cases {
		if _, err := ReadFrom(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tensor.tns")
	ts, err := Random(RandomOptions{Order: 3, Dim: 5, NNZ: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != ts.NNZ() {
		t.Fatalf("NNZ = %d, want %d", got.NNZ(), ts.NNZ())
	}
	if _, err := Load(filepath.Join(dir, "missing.tns")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadRejectsExcessiveOrder(t *testing.T) {
	// Regression (found by FuzzReadFrom): an order beyond MaxOrder must be
	// a parse error, not a panic.
	if _, err := ReadFrom(strings.NewReader("sym 20 1 0\n")); err == nil {
		t.Error("order 20 header must fail")
	}
	line := strings.Repeat("1 ", 20) + "1.0\n"
	if _, err := ReadCOO(strings.NewReader(line), 0); err == nil {
		t.Error("order-20 COO line must fail")
	}
}
