// Package spsym implements sparse symmetric tensors in the UCOO
// (unique coordinate) format: only the index-ordered-unique (IOU) non-zeros
// are stored, each standing for every permutation of its index tuple
// (paper §II-B). UCOO is the interchange format of this module; the CSS and
// CSF formats are built from it.
package spsym

import (
	"errors"
	"fmt"
	"sort"

	"github.com/symprop/symprop/internal/dense"
)

// Tensor is a sparse symmetric tensor of the given order with hypercubical
// dimension size Dim. Entry k occupies Index[k*Order : (k+1)*Order]
// (a non-decreasing tuple) with value Values[k]. The implied full tensor
// holds Values[k] at every permutation of that tuple.
type Tensor struct {
	Order  int
	Dim    int
	Index  []int32 // flat IOU coordinates, len = NNZ()*Order
	Values []float64
}

// mustArg panics with a formatted message when ok is false. New and
// Append are constructor-level APIs whose arguments come from code, not
// directly from end users: every reader in this package (ReadFrom,
// ReadBinary, the hypergraph converters) validates order, dimension and
// index ranges and returns an error before calling them, so a violation
// here is a programming bug that should fail fast. The symlint panicpolicy
// analyzer keeps library panics inside documented helpers like this one.
func mustArg(ok bool, format string, args ...any) {
	if ok {
		return
	}
	panic(fmt.Sprintf(format, args...))
}

// New returns an empty sparse symmetric tensor of the given shape.
func New(order, dim int) *Tensor {
	mustArg(order >= 1 && order <= dense.MaxOrder, "spsym: order %d out of range [1,%d]", order, dense.MaxOrder)
	mustArg(dim >= 1, "spsym: dimension size must be positive")
	return &Tensor{Order: order, Dim: dim}
}

// NNZ returns the number of stored IOU non-zeros (unnnz in the paper).
func (t *Tensor) NNZ() int { return len(t.Values) }

// IndexAt returns the k-th IOU tuple as a shared sub-slice of the flat
// index array; callers must not modify or retain it across mutations.
func (t *Tensor) IndexAt(k int) []int32 {
	return t.Index[k*t.Order : (k+1)*t.Order]
}

// Append adds one non-zero. idx need not be sorted; it is canonicalized to
// IOU order. Appending does not deduplicate; call Canonicalize afterwards
// if duplicates are possible.
func (t *Tensor) Append(idx []int, v float64) {
	mustArg(len(idx) == t.Order, "spsym: index tuple has %d entries, want %d", len(idx), t.Order)
	s := dense.SortedCopy(idx)
	for _, j := range s {
		mustArg(j >= 0 && j < t.Dim, "spsym: index %d out of range [0,%d)", j, t.Dim)
		t.Index = append(t.Index, int32(j))
	}
	t.Values = append(t.Values, v)
}

// Canonicalize sorts the non-zeros lexicographically by IOU tuple, merges
// duplicates by summation, and drops exact zeros produced by merging.
// Every kernel in this module requires a canonicalized tensor.
func (t *Tensor) Canonicalize() {
	n := t.NNZ()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		return t.compareTuples(perm[a], perm[b]) < 0
	})

	newIdx := make([]int32, 0, len(t.Index))
	newVal := make([]float64, 0, n)
	for _, k := range perm {
		tuple := t.IndexAt(k)
		if len(newVal) > 0 {
			prev := newIdx[len(newIdx)-t.Order:]
			if tuplesEqual(prev, tuple) {
				newVal[len(newVal)-1] += t.Values[k]
				continue
			}
		}
		newIdx = append(newIdx, tuple...)
		newVal = append(newVal, t.Values[k])
	}

	// Drop zeros created by cancellation.
	outIdx := newIdx[:0]
	outVal := newVal[:0]
	for k := 0; k < len(newVal); k++ {
		if newVal[k] == 0 {
			continue
		}
		outIdx = append(outIdx, newIdx[k*t.Order:(k+1)*t.Order]...)
		outVal = append(outVal, newVal[k])
	}
	t.Index = outIdx
	t.Values = outVal
}

func (t *Tensor) compareTuples(a, b int) int {
	ta := t.IndexAt(a)
	tb := t.IndexAt(b)
	for i := 0; i < t.Order; i++ {
		switch {
		case ta[i] < tb[i]:
			return -1
		case ta[i] > tb[i]:
			return 1
		}
	}
	return 0
}

func tuplesEqual(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: IOU-sorted tuples, in-range
// indices, lexicographic order without duplicates, matching array lengths.
func (t *Tensor) Validate() error {
	if t.Order < 1 {
		return errors.New("spsym: non-positive order")
	}
	if len(t.Index) != t.NNZ()*t.Order {
		return fmt.Errorf("spsym: index array length %d != nnz*order %d", len(t.Index), t.NNZ()*t.Order)
	}
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		for i, j := range tuple {
			if j < 0 || int(j) >= t.Dim {
				return fmt.Errorf("spsym: non-zero %d index %d out of range [0,%d)", k, j, t.Dim)
			}
			if i > 0 && j < tuple[i-1] {
				return fmt.Errorf("spsym: non-zero %d tuple %v not IOU-sorted", k, tuple)
			}
		}
		if k > 0 && t.compareTuples(k-1, k) >= 0 {
			return fmt.Errorf("spsym: non-zeros %d and %d out of lexicographic order or duplicated", k-1, k)
		}
	}
	return nil
}

// NormSquared returns the squared Frobenius norm of the implied full
// tensor: sum over IOU non-zeros of value^2 times the tuple's distinct
// permutation count (used by the Tucker objective f = ||X||^2 - ||C||^2).
func (t *Tensor) NormSquared() float64 {
	idx := make([]int, t.Order)
	var sum float64
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		for i, v := range tuple {
			idx[i] = int(v)
		}
		sum += t.Values[k] * t.Values[k] * float64(dense.PermutationCount(idx))
	}
	return sum
}

// ExpandedNNZ returns the non-zero count of the implied full tensor
// (nnz in the paper): the sum of distinct permutation counts over all IOU
// non-zeros. This is the size a general sparse format such as COO or CSF
// must pay, and what makes SPLATT run out of memory at high order.
func (t *Tensor) ExpandedNNZ() int64 {
	idx := make([]int, t.Order)
	var sum int64
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		for i, v := range tuple {
			idx[i] = int(v)
		}
		sum += dense.PermutationCount(idx)
	}
	return sum
}

// ExpandPermutations returns the full non-zero set as (flat indices,
// values): every distinct permutation of every IOU tuple. Intended for the
// SPLATT baseline and for small-scale correctness oracles; the caller is
// responsible for checking ExpandedNNZ against its memory budget first.
func (t *Tensor) ExpandPermutations() ([]int32, []float64) {
	total := t.ExpandedNNZ()
	outIdx := make([]int32, 0, total*int64(t.Order))
	outVal := make([]float64, 0, total)
	perm := make([]int32, t.Order)
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		copy(perm, tuple)
		v := t.Values[k]
		forEachDistinctPermutation(perm, func(p []int32) {
			outIdx = append(outIdx, p...)
			outVal = append(outVal, v)
		})
	}
	return outIdx, outVal
}

// ForEachExpanded invokes f for every non-zero of the implied full tensor:
// each distinct permutation of each IOU tuple, in lexicographic order per
// tuple. The index slice is reused between calls; f must not retain it.
// This is the streaming (never-materialized) counterpart of
// ExpandPermutations, used by baselines that pay the full expansion cost
// without the memory (e.g. the original HOQRI n-ary contraction).
func (t *Tensor) ForEachExpanded(f func(idx []int32, val float64)) {
	perm := make([]int32, t.Order)
	for k := 0; k < t.NNZ(); k++ {
		t.ForEachExpandedOf(k, perm, f)
	}
}

// ForEachExpandedOf invokes f for every distinct permutation of non-zero
// k, in lexicographic order. perm is caller-provided scratch of length at
// least t.Order, so per-non-zero streaming loops (the UCOO and n-ary
// kernels call this once per non-zero per sweep) allocate nothing: hoist
// perm and f out of the loop and the whole expansion runs on per-worker
// state. The permutation walk is inlined rather than delegated to
// forEachDistinctPermutation so no per-call adapter closure is needed.
// The index slice passed to f aliases perm; f must not retain it.
func (t *Tensor) ForEachExpandedOf(k int, perm []int32, f func(idx []int32, val float64)) {
	p := perm[:t.Order]
	copy(p, t.IndexAt(k))
	v := t.Values[k]
	n := len(p)
	for {
		f(p, v)
		// Find rightmost i with p[i] < p[i+1].
		i := n - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			// Restore ascending order for the next caller and stop.
			reverse(p)
			return
		}
		// Find rightmost j > i with p[j] > p[i]; swap; reverse suffix.
		j := n - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		reverse(p[i+1:])
	}
}

// forEachDistinctPermutation visits each distinct permutation of the sorted
// tuple p exactly once, in lexicographic order, using the classic
// next-permutation algorithm (which inherently skips duplicates).
func forEachDistinctPermutation(p []int32, f func([]int32)) {
	n := len(p)
	for {
		f(p)
		// Find rightmost i with p[i] < p[i+1].
		i := n - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			// Restore ascending order for the caller and stop.
			reverse(p)
			return
		}
		// Find rightmost j > i with p[j] > p[i]; swap; reverse suffix.
		j := n - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		reverse(p[i+1:])
	}
}

func reverse(p []int32) {
	for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Order: t.Order, Dim: t.Dim}
	out.Index = append([]int32(nil), t.Index...)
	out.Values = append([]float64(nil), t.Values...)
	return out
}

// Scale multiplies every value by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Values {
		t.Values[i] *= alpha
	}
}

// MaxDistinct returns the largest number of distinct index values in any
// single non-zero, a cheap proxy for lattice width used by capacity
// estimates.
func (t *Tensor) MaxDistinct() int {
	maxd := 0
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		d := 0
		for i, v := range tuple {
			if i == 0 || v != tuple[i-1] {
				d++
			}
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Add accumulates other into t (both must share order and dimension) and
// re-canonicalizes. Useful for composing tensors from parts, e.g. summing
// rank-1 moment contributions or merging hypergraph snapshots.
func (t *Tensor) Add(other *Tensor) error {
	if other.Order != t.Order || other.Dim != t.Dim {
		return fmt.Errorf("spsym: Add shape mismatch: (%d,%d) vs (%d,%d)",
			t.Order, t.Dim, other.Order, other.Dim)
	}
	t.Index = append(t.Index, other.Index...)
	t.Values = append(t.Values, other.Values...)
	t.Canonicalize()
	return nil
}
