package spsym

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	ts, err := Random(RandomOptions{Order: 5, Dim: 50, NNZ: 200, Seed: 31, Values: ValueNormal})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order != ts.Order || got.Dim != ts.Dim || got.NNZ() != ts.NNZ() {
		t.Fatal("shape mismatch after binary round trip")
	}
	for i := range ts.Index {
		if ts.Index[i] != got.Index[i] {
			t.Fatal("indices differ")
		}
	}
	for i := range ts.Values {
		if ts.Values[i] != got.Values[i] {
			t.Fatal("values differ (must be bit-exact)")
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("SYM"),
		"bad magic":   []byte("NOTMAGIC0123456789012345"),
		"truncated": func() []byte {
			ts, _ := Random(RandomOptions{Order: 3, Dim: 5, NNZ: 5, Seed: 1})
			var buf bytes.Buffer
			_ = ts.WriteBinary(&buf)
			return buf.Bytes()[:buf.Len()-10]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryRejectsCorruptPayload(t *testing.T) {
	ts, _ := Random(RandomOptions{Order: 3, Dim: 5, NNZ: 5, Seed: 2})
	var buf bytes.Buffer
	if err := ts.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt an index to be out of range.
	data[8+16] = 0xFF
	data[8+16+1] = 0xFF
	data[8+16+2] = 0xFF
	data[8+16+3] = 0x7F
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("corrupt index must fail validation")
	}
}

func TestLoadAutoBothFormats(t *testing.T) {
	dir := t.TempDir()
	ts, _ := Random(RandomOptions{Order: 3, Dim: 8, NNZ: 12, Seed: 3})

	binPath := filepath.Join(dir, "x.stnb")
	if err := ts.SaveBinary(binPath); err != nil {
		t.Fatal(err)
	}
	txtPath := filepath.Join(dir, "x.tns")
	if err := ts.Save(txtPath); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{binPath, txtPath} {
		got, err := LoadAuto(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.NNZ() != ts.NNZ() {
			t.Fatalf("%s: nnz %d, want %d", path, got.NNZ(), ts.NNZ())
		}
	}
	if _, err := LoadAuto(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
	if _, err := LoadBinary(txtPath); err == nil {
		t.Error("text file through LoadBinary must fail")
	}
}

func TestLoadAutoTinyTextFile(t *testing.T) {
	// A text file shorter than the 8-byte magic must still parse (or fail
	// as text), not crash the sniffer.
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.tns")
	if err := writeFile(path, "sym 2 2 0\n"); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Error("expected empty tensor")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestDegrees(t *testing.T) {
	ts := New(3, 5)
	ts.Append([]int{0, 1, 2}, 1)
	ts.Append([]int{1, 1, 3}, 1)
	ts.Append([]int{4, 4, 4}, 1)
	ts.Canonicalize()
	deg := ts.Degrees()
	want := []int64{1, 2, 1, 1, 1}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("Degrees = %v, want %v", deg, want)
		}
	}
}

// Regression (found by FuzzReadBinary): a header declaring a huge nnz with
// no body must fail on the short read, not attempt a terabyte allocation.
func TestBinaryHeaderBombRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("SYMTNSR1"))
	hdr := make([]byte, 16)
	hdr[0] = 3               // order 3
	hdr[4] = 10              // dim 10
	hdr[8], hdr[9] = 0, 0    //
	hdr[10], hdr[11] = 0, 64 // nnz = 64<<16 ... build a big value below
	buf.Write(hdr)
	// Rewrite nnz as 2^35 directly.
	b := buf.Bytes()
	b[8+8] = 0
	b[8+9] = 0
	b[8+10] = 0
	b[8+11] = 0
	b[8+12] = 8 // 8 << 32 = 2^35
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("allocation-bomb header must fail")
	}
}
