package spsym

import (
	"testing"

	"github.com/symprop/symprop/internal/dense"
)

func TestRandomExactNNZ(t *testing.T) {
	ts, err := Random(RandomOptions{Order: 5, Dim: 20, NNZ: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() != 300 {
		t.Fatalf("NNZ = %d, want 300", ts.NNZ())
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	opts := RandomOptions{Order: 3, Dim: 10, NNZ: 50, Seed: 7}
	a, err := Random(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different nnz")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different values")
		}
	}
	for i := range a.Index {
		if a.Index[i] != b.Index[i] {
			t.Fatal("same seed produced different indices")
		}
	}
}

func TestRandomSaturatesSpace(t *testing.T) {
	// Space of order-2 dim-3 IOU tuples is 6; asking for 100 caps at 6.
	ts, err := Random(RandomOptions{Order: 2, Dim: 3, NNZ: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int64(ts.NNZ()) != dense.Count(2, 3) {
		t.Fatalf("NNZ = %d, want %d", ts.NNZ(), dense.Count(2, 3))
	}
}

func TestRandomForbidRepeats(t *testing.T) {
	ts, err := Random(RandomOptions{Order: 3, Dim: 8, NNZ: 40, Seed: 2, ForbidRepeats: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < ts.NNZ(); k++ {
		tuple := ts.IndexAt(k)
		for i := 1; i < len(tuple); i++ {
			if tuple[i] == tuple[i-1] {
				t.Fatalf("non-zero %d has repeated index: %v", k, tuple)
			}
		}
	}
	// Saturation with ForbidRepeats uses C(dim, order).
	ts2, err := Random(RandomOptions{Order: 3, Dim: 4, NNZ: 100, Seed: 2, ForbidRepeats: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(ts2.NNZ()) != dense.Binomial(4, 3) {
		t.Fatalf("saturated NNZ = %d, want %d", ts2.NNZ(), dense.Binomial(4, 3))
	}
}

func TestRandomValueDistributions(t *testing.T) {
	ones, err := Random(RandomOptions{Order: 2, Dim: 10, NNZ: 20, Seed: 3, Values: ValueOnes})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ones.Values {
		if v != 1 {
			t.Fatalf("ValueOnes produced %v", v)
		}
	}
	uni, err := Random(RandomOptions{Order: 2, Dim: 10, NNZ: 20, Seed: 3, Values: ValueUniform})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range uni.Values {
		if v <= 0 || v > 1 {
			t.Fatalf("ValueUniform produced %v outside (0,1]", v)
		}
	}
}

func TestRandomRejectsBadShape(t *testing.T) {
	if _, err := Random(RandomOptions{Order: 0, Dim: 5, NNZ: 1}); err == nil {
		t.Error("order 0 should fail")
	}
	if _, err := Random(RandomOptions{Order: 2, Dim: 0, NNZ: 1}); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := Random(RandomOptions{Order: dense.MaxOrder + 1, Dim: 5, NNZ: 1}); err == nil {
		t.Error("excessive order should fail")
	}
}

// The dense regime (target > half the IOU space) must sample uniformly,
// not keep a lexicographic prefix: the last tuple of the space must appear
// in some seeds and not others.
func TestRandomDenseRegimeIsUniform(t *testing.T) {
	// Space of order-2 dim-4 is 10; ask for 7 (dense regime).
	last := []int32{3, 3}
	seen, missed := false, false
	for seed := int64(0); seed < 30 && !(seen && missed); seed++ {
		ts, err := Random(RandomOptions{Order: 2, Dim: 4, NNZ: 7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if ts.NNZ() != 7 {
			t.Fatalf("seed %d: nnz %d", seed, ts.NNZ())
		}
		found := false
		for k := 0; k < ts.NNZ(); k++ {
			tu := ts.IndexAt(k)
			if tu[0] == last[0] && tu[1] == last[1] {
				found = true
			}
		}
		if found {
			seen = true
		} else {
			missed = true
		}
	}
	if !seen || !missed {
		t.Errorf("dense regime not sampling uniformly: seen=%v missed=%v", seen, missed)
	}
}
