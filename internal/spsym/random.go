package spsym

import (
	"fmt"
	"math/rand"

	"github.com/symprop/symprop/internal/dense"
)

// RandomOptions configures synthetic sparse symmetric tensor generation.
type RandomOptions struct {
	Order int
	Dim   int
	NNZ   int   // target IOU non-zero count
	Seed  int64 // RNG seed; same seed => same tensor

	// Values selects the value distribution. The zero value (ValueUniform)
	// draws from U(0,1), matching the synthetic tensors of the CSS paper.
	Values ValueDist

	// AllowRepeats permits repeated index values inside one tuple
	// ("diagonal" entries). Hypergraph-derived tensors always have repeats
	// (dummy-node padding), so the default is true.
	ForbidRepeats bool
}

// ValueDist enumerates value distributions for synthetic tensors.
type ValueDist int

const (
	// ValueUniform draws values uniformly from (0, 1].
	ValueUniform ValueDist = iota
	// ValueNormal draws values from the standard normal distribution.
	ValueNormal
	// ValueOnes sets every value to 1 (adjacency-tensor style).
	ValueOnes
)

// Random generates a canonical sparse symmetric tensor with exactly
// opts.NNZ distinct IOU non-zeros (or the whole IOU space if smaller).
func Random(opts RandomOptions) (*Tensor, error) {
	if opts.Order < 1 || opts.Order > dense.MaxOrder {
		return nil, fmt.Errorf("spsym: random order %d out of range [1,%d]", opts.Order, dense.MaxOrder)
	}
	if opts.Dim < 1 {
		return nil, fmt.Errorf("spsym: random dim %d must be positive", opts.Dim)
	}
	space := dense.Count(opts.Order, opts.Dim)
	if opts.ForbidRepeats {
		space = dense.Binomial(opts.Dim, opts.Order)
	}
	nnz := int64(opts.NNZ)
	if nnz > space {
		nnz = space
	}
	if float64(nnz) > 0.5*float64(space) {
		return randomDenseRegime(opts, nnz)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	t := New(opts.Order, opts.Dim)
	t.Index = make([]int32, 0, nnz*int64(opts.Order))
	t.Values = make([]float64, 0, nnz)

	seen := make(map[string]struct{}, nnz)
	idx := make([]int, opts.Order)
	key := make([]byte, opts.Order*4)
	for int64(len(t.Values)) < nnz {
		sampleTuple(rng, idx, opts.Dim, opts.ForbidRepeats)
		dense.SortIndex(idx)
		encodeKey(idx, key)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		for _, j := range idx {
			t.Index = append(t.Index, int32(j))
		}
		t.Values = append(t.Values, drawValue(rng, opts.Values))
	}
	t.Canonicalize()
	return t, nil
}

// randomDenseRegime handles targets close to the full IOU space, where
// rejection sampling stalls: enumerate the (small, by precondition) space
// of admissible tuples and draw a uniform nnz-subset via a permutation.
func randomDenseRegime(opts RandomOptions, nnz int64) (*Tensor, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	var all [][]int
	dense.ForEachIOU(opts.Order, opts.Dim, func(idx []int) {
		if opts.ForbidRepeats && hasRepeat(idx) {
			return
		}
		all = append(all, append([]int(nil), idx...))
	})
	if nnz > int64(len(all)) {
		nnz = int64(len(all))
	}
	t := New(opts.Order, opts.Dim)
	for _, pos := range rng.Perm(len(all))[:nnz] {
		t.Append(all[pos], drawValue(rng, opts.Values))
	}
	t.Canonicalize()
	return t, nil
}

func hasRepeat(idx []int) bool {
	for i := 1; i < len(idx); i++ {
		if idx[i] == idx[i-1] {
			return true
		}
	}
	return false
}

func sampleTuple(rng *rand.Rand, idx []int, dim int, forbidRepeats bool) {
	if !forbidRepeats {
		for i := range idx {
			idx[i] = rng.Intn(dim)
		}
		return
	}
	// Floyd's algorithm for a uniform k-subset of [0, dim).
	n := len(idx)
	chosen := make(map[int]struct{}, n)
	for j := dim - n; j < dim; j++ {
		v := rng.Intn(j + 1)
		if _, ok := chosen[v]; ok {
			v = j
		}
		chosen[v] = struct{}{}
	}
	i := 0
	for v := range chosen {
		idx[i] = v
		i++
	}
}

func drawValue(rng *rand.Rand, d ValueDist) float64 {
	switch d {
	case ValueNormal:
		return rng.NormFloat64()
	case ValueOnes:
		return 1
	default:
		// Uniform over (0,1]: avoid exact zeros that Canonicalize drops.
		return 1 - rng.Float64()
	}
}

func encodeKey(idx []int, key []byte) {
	for i, v := range idx {
		key[i*4] = byte(v)
		key[i*4+1] = byte(v >> 8)
		key[i*4+2] = byte(v >> 16)
		key[i*4+3] = byte(v >> 24)
	}
}
