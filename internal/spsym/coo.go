package spsym

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/symprop/symprop/internal/dense"
)

// ReadCOO parses a general sparse tensor in the FROSTT .tns convention —
// one "i1 i2 ... iN value" line per non-zero, 1-based indices, no header —
// and compresses it to the symmetric UCOO format. The order is inferred
// from the first data line and the dimension from the largest index.
//
// General tensors list every permutation of a symmetric entry explicitly
// (and real exports are often noisy), so symmetrization policy matters:
//
//   - tol >= 0: entries that sort to the same IOU tuple must agree within
//     |a-b| <= tol·max(|a|,|b|, 1); disagreement is an error. Duplicates
//     collapse to their mean. Use tol = 0 for exact duplicates.
//   - tol < 0: no checking; duplicates collapse to their mean
//     (forced symmetrization of an asymmetric tensor).
func ReadCOO(r io.Reader, tol float64) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	type acc struct {
		sum   float64
		min   float64
		max   float64
		count int64
	}
	entries := make(map[string]*acc)
	order := 0
	dim := 0
	line := 0
	var key []byte
	var idx []int

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if order == 0 {
			order = len(fields) - 1
			if order < 1 || order > dense.MaxOrder {
				return nil, fmt.Errorf("spsym: line %d: order %d out of range [1,%d]", line, order, dense.MaxOrder)
			}
			key = make([]byte, order*4)
			idx = make([]int, order)
		}
		if len(fields) != order+1 {
			return nil, fmt.Errorf("spsym: line %d: want %d fields, got %d", line, order+1, len(fields))
		}
		for i := 0; i < order; i++ {
			v, err := strconv.Atoi(fields[i])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("spsym: line %d: bad index %q", line, fields[i])
			}
			idx[i] = v - 1
			if v > dim {
				dim = v
			}
		}
		val, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("spsym: line %d: bad value %q: %v", line, fields[order], err)
		}
		dense.SortIndex(idx)
		encodeKey(idx, key)
		a := entries[string(key)]
		if a == nil {
			a = &acc{min: val, max: val}
			entries[string(key)] = a
		} else {
			if val < a.min {
				a.min = val
			}
			if val > a.max {
				a.max = val
			}
		}
		a.sum += val
		a.count++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spsym: read: %w", err)
	}
	if order == 0 {
		return nil, fmt.Errorf("spsym: empty COO input")
	}

	t := New(order, dim)
	for keyStr, a := range entries {
		if tol >= 0 {
			spread := a.max - a.min
			scale := math.Max(math.Max(math.Abs(a.max), math.Abs(a.min)), 1)
			if spread > tol*scale {
				return nil, fmt.Errorf("spsym: asymmetric input: permutations of one entry span [%g, %g] (tol %g); pass a negative tol to force symmetrization", a.min, a.max, tol)
			}
		}
		for i := 0; i < order; i++ {
			b := keyStr[i*4 : i*4+4]
			idx[i] = int(int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24))
		}
		t.Append(idx, a.sum/float64(a.count))
	}
	t.Canonicalize()
	return t, nil
}

// NormalizeByDegree returns a copy of t with each non-zero scaled by
// 1/sqrt(deg(i1)·…·deg(iN)) — the symmetric normalization of spectral
// hypergraph clustering, which equalizes the influence of high-degree
// nodes before decomposition. Zero-degree indices cannot appear in any
// non-zero, so no division by zero occurs.
func (t *Tensor) NormalizeByDegree() *Tensor {
	deg := t.Degrees()
	out := t.Clone()
	for k := 0; k < out.NNZ(); k++ {
		tuple := out.IndexAt(k)
		scale := 1.0
		for _, v := range tuple {
			scale *= float64(deg[v])
		}
		out.Values[k] /= math.Sqrt(scale)
	}
	return out
}
