package spsym

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/symprop/symprop/internal/dense"
)

func TestAppendSortsTuple(t *testing.T) {
	ts := New(3, 6)
	ts.Append([]int{5, 1, 3}, 2.0)
	got := ts.IndexAt(0)
	want := []int32{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IndexAt(0) = %v, want %v", got, want)
		}
	}
}

func TestAppendPanicsOnBadInput(t *testing.T) {
	ts := New(2, 3)
	assertPanics(t, "wrong arity", func() { ts.Append([]int{1}, 1) })
	assertPanics(t, "out of range", func() { ts.Append([]int{0, 3}, 1) })
	assertPanics(t, "negative", func() { ts.Append([]int{-1, 0}, 1) })
}

func TestNewPanicsOnBadShape(t *testing.T) {
	assertPanics(t, "order 0", func() { New(0, 3) })
	assertPanics(t, "order too large", func() { New(dense.MaxOrder+1, 3) })
	assertPanics(t, "dim 0", func() { New(2, 0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestCanonicalizeSortsAndMerges(t *testing.T) {
	ts := New(2, 4)
	ts.Append([]int{3, 1}, 1.0)
	ts.Append([]int{0, 0}, 2.0)
	ts.Append([]int{1, 3}, 4.0) // duplicate of (1,3) after sorting
	ts.Append([]int{2, 2}, 5.0)
	ts.Canonicalize()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", ts.NNZ())
	}
	// (1,3) must hold the merged value 5.
	if ts.Values[1] != 5.0 {
		t.Errorf("merged value = %v, want 5", ts.Values[1])
	}
}

func TestCanonicalizeDropsCancellation(t *testing.T) {
	ts := New(2, 4)
	ts.Append([]int{1, 2}, 3.0)
	ts.Append([]int{2, 1}, -3.0)
	ts.Append([]int{0, 0}, 1.0)
	ts.Canonicalize()
	if ts.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled pair dropped)", ts.NNZ())
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	ts := New(2, 4)
	ts.Append([]int{1, 2}, 1)
	ts.Append([]int{0, 3}, 1)
	// Unsorted non-zeros: (1,2) before (0,3).
	if err := ts.Validate(); err == nil {
		t.Error("expected lexicographic-order violation")
	}
	ts.Canonicalize()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a tuple to be non-IOU.
	ts.Index[0], ts.Index[1] = ts.Index[1], ts.Index[0]
	if ts.Index[0] > ts.Index[1] {
		if err := ts.Validate(); err == nil {
			t.Error("expected non-IOU tuple violation")
		}
	}
}

func TestNormSquared(t *testing.T) {
	// Tensor with one nonzero x=2 at (1,3,5): full tensor has 6 permutations,
	// so ||X||^2 = 6 * 4 = 24.
	ts := New(3, 6)
	ts.Append([]int{1, 3, 5}, 2.0)
	if got := ts.NormSquared(); got != 24 {
		t.Errorf("NormSquared = %v, want 24", got)
	}
	// Diagonal entry (2,2,2) has a single permutation.
	ts2 := New(3, 6)
	ts2.Append([]int{2, 2, 2}, 3.0)
	if got := ts2.NormSquared(); got != 9 {
		t.Errorf("NormSquared diag = %v, want 9", got)
	}
}

func TestExpandedNNZ(t *testing.T) {
	ts := New(3, 6)
	ts.Append([]int{1, 3, 5}, 1.0) // 6 permutations
	ts.Append([]int{1, 1, 3}, 1.0) // 3 permutations
	ts.Append([]int{2, 2, 2}, 1.0) // 1 permutation
	ts.Canonicalize()
	if got := ts.ExpandedNNZ(); got != 10 {
		t.Errorf("ExpandedNNZ = %d, want 10", got)
	}
}

func TestExpandPermutationsDistinct(t *testing.T) {
	ts := New(3, 4)
	ts.Append([]int{0, 1, 1}, 2.5)
	ts.Canonicalize()
	idx, vals := ts.ExpandPermutations()
	if len(vals) != 3 {
		t.Fatalf("expanded %d entries, want 3", len(vals))
	}
	seen := map[[3]int32]bool{}
	for k := range vals {
		if vals[k] != 2.5 {
			t.Errorf("value = %v, want 2.5", vals[k])
		}
		var key [3]int32
		copy(key[:], idx[k*3:(k+1)*3])
		if seen[key] {
			t.Errorf("duplicate permutation %v", key)
		}
		seen[key] = true
	}
	for _, want := range [][3]int32{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if !seen[want] {
			t.Errorf("missing permutation %v", want)
		}
	}
}

// Property: expansion count always equals ExpandedNNZ, and the original
// sorted tuple is restored after enumeration.
func TestExpandPermutationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 1 + rng.Intn(5)
		dim := 1 + rng.Intn(5)
		ts := New(order, dim)
		idx := make([]int, order)
		for k := 0; k < 1+rng.Intn(10); k++ {
			for i := range idx {
				idx[i] = rng.Intn(dim)
			}
			ts.Append(idx, rng.Float64()+0.5)
		}
		ts.Canonicalize()
		_, vals := ts.ExpandPermutations()
		return int64(len(vals)) == ts.ExpandedNNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	ts := New(2, 3)
	ts.Append([]int{0, 1}, 1.0)
	c := ts.Clone()
	c.Values[0] = 99
	c.Index[0] = 2
	if ts.Values[0] != 1.0 || ts.Index[0] != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestScale(t *testing.T) {
	ts := New(2, 3)
	ts.Append([]int{0, 1}, 2.0)
	ts.Scale(0.5)
	if ts.Values[0] != 1.0 {
		t.Errorf("Scale: got %v, want 1", ts.Values[0])
	}
}

func TestMaxDistinct(t *testing.T) {
	ts := New(4, 9)
	ts.Append([]int{1, 1, 1, 1}, 1)
	ts.Append([]int{1, 2, 2, 5}, 1)
	ts.Canonicalize()
	if got := ts.MaxDistinct(); got != 3 {
		t.Errorf("MaxDistinct = %d, want 3", got)
	}
}

func TestNormSquaredMatchesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ts, err := Random(RandomOptions{Order: 4, Dim: 5, NNZ: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	_, vals := ts.ExpandPermutations()
	var want float64
	for _, v := range vals {
		want += v * v
	}
	if got := ts.NormSquared(); math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Errorf("NormSquared = %v, expansion says %v", got, want)
	}
}

func TestAddMergesTensors(t *testing.T) {
	a := New(2, 4)
	a.Append([]int{0, 1}, 1.0)
	a.Append([]int{2, 3}, 2.0)
	a.Canonicalize()
	b := New(2, 4)
	b.Append([]int{1, 0}, 3.0) // duplicate of (0,1)
	b.Append([]int{0, 0}, 5.0)
	b.Canonicalize()
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", a.NNZ())
	}
	if a.At0() != 5.0 { // (0,0) sorts first
		t.Errorf("first value = %v, want 5", a.At0())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	c := New(3, 4)
	if err := a.Add(c); err == nil {
		t.Error("order mismatch should fail")
	}
	d := New(2, 5)
	if err := a.Add(d); err == nil {
		t.Error("dim mismatch should fail")
	}
}
