package spsym

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFrom hardens the text parser: arbitrary input must either parse
// into a valid tensor or return an error — never panic, never produce a
// tensor that fails Validate.
func FuzzReadFrom(f *testing.F) {
	f.Add("sym 2 3 2\n1 2 1.5\n3 3 -2.0\n")
	f.Add("sym 1 1 1\n1 0.5\n")
	f.Add("# comment\nsym 3 4 0\n")
	f.Add("sym 2 3 1\n2 1 1e308\n")
	f.Add("sym 16 2 1\n1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		ts, err := ReadFrom(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("parsed tensor fails validation: %v\ninput: %q", verr, input)
		}
	})
}

// FuzzReadBinary hardens the binary parser the same way.
func FuzzReadBinary(f *testing.F) {
	ts, _ := Random(RandomOptions{Order: 3, Dim: 5, NNZ: 5, Seed: 1})
	var buf bytes.Buffer
	_ = ts.WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("SYMTNSR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("parsed binary tensor fails validation: %v", verr)
		}
	})
}
