package spsym

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/symprop/symprop/internal/dense"
)

// The text format is a symmetric variant of the FROSTT .tns convention:
//
//	# optional comment lines
//	sym <order> <dim> <nnz>
//	i1 i2 ... iN value        (1-based indices, one IOU non-zero per line)
//
// Indices are written 1-based for compatibility with FROSTT tooling and
// converted to 0-based in memory. Tuples need not arrive sorted or unique;
// ReadFrom canonicalizes.

// Write serializes t in the symmetric text format.
func (t *Tensor) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "sym %d %d %d\n", t.Order, t.Dim, t.NNZ()); err != nil {
		return err
	}
	for k := 0; k < t.NNZ(); k++ {
		tuple := t.IndexAt(k)
		for _, j := range tuple {
			if _, err := fmt.Fprintf(bw, "%d ", j+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%.17g\n", t.Values[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses a tensor in the symmetric text format.
func ReadFrom(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var t *Tensor
	declared := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if t == nil {
			if len(fields) != 4 || fields[0] != "sym" {
				return nil, fmt.Errorf("spsym: line %d: want header \"sym <order> <dim> <nnz>\", got %q", line, text)
			}
			order, err1 := strconv.Atoi(fields[1])
			dim, err2 := strconv.Atoi(fields[2])
			nnz, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil ||
				order < 1 || order > dense.MaxOrder || dim < 1 || nnz < 0 {
				return nil, fmt.Errorf("spsym: line %d: malformed header %q (order must be in [1,%d])", line, text, dense.MaxOrder)
			}
			t = New(order, dim)
			t.Index = make([]int32, 0, nnz*order)
			t.Values = make([]float64, 0, nnz)
			declared = nnz
			continue
		}
		if len(fields) != t.Order+1 {
			return nil, fmt.Errorf("spsym: line %d: want %d fields, got %d", line, t.Order+1, len(fields))
		}
		idx := make([]int, t.Order)
		for i := 0; i < t.Order; i++ {
			v, err := strconv.Atoi(fields[i])
			if err != nil {
				return nil, fmt.Errorf("spsym: line %d: bad index %q: %v", line, fields[i], err)
			}
			if v < 1 || v > t.Dim {
				return nil, fmt.Errorf("spsym: line %d: index %d out of range [1,%d]", line, v, t.Dim)
			}
			idx[i] = v - 1
		}
		val, err := strconv.ParseFloat(fields[t.Order], 64)
		if err != nil {
			return nil, fmt.Errorf("spsym: line %d: bad value %q: %v", line, fields[t.Order], err)
		}
		t.Append(idx, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spsym: read: %w", err)
	}
	if t == nil {
		return nil, fmt.Errorf("spsym: empty input, missing header")
	}
	if declared >= 0 && t.NNZ() != declared {
		return nil, fmt.Errorf("spsym: header declares %d non-zeros, file has %d", declared, t.NNZ())
	}
	t.Canonicalize()
	return t, nil
}

// Load reads a tensor from the named file.
func Load(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

// Save writes t to the named file.
func (t *Tensor) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
