// Package dense implements compact storage and iteration for dense
// symmetric tensors.
//
// An order-N symmetric tensor with dimension size R is fully determined by
// its index-ordered-unique (IOU) entries, i.e. the entries at indices
// j1 <= j2 <= ... <= jN. This package stores exactly those entries,
// linearized in lexicographic order of the IOU tuple, which needs
// Count(N, R) = C(N+R-1, N) values instead of R^N — asymptotically an N!
// reduction (paper §II-B).
//
// The hot paths of SymProp iterate this layout with perfectly nested loops
// (paper Algorithm 1). Go has no template metaprogramming, so the loop nests
// for every order up to MaxGenOrder are generated ahead of time by
// tools/geniterate and checked in as iterate_gen.go; higher orders fall back
// to a recursive implementation. A third strategy — the boundary-trace
// index-mapping iterator of Ballard et al. — exists solely as the comparison
// baseline for the paper's §VI-B.4 ablation.
package dense

import (
	"fmt"
	"math"
)

// MaxOrder is the largest tensor order supported anywhere in this module.
// The paper evaluates orders up to 14; we leave headroom.
const MaxOrder = 16

// binomialTableSize bounds n in the precomputed C(n, k) table. Ranking an
// IOU tuple of order N over dimension R needs C(n, k) for n up to N+R-1,
// so the table is sized generously and falls back to float-free iterative
// computation beyond it.
const binomialTableSize = 128

var binomialTable [binomialTableSize][binomialTableSize]int64

func init() {
	for n := 0; n < binomialTableSize; n++ {
		binomialTable[n][0] = 1
		for k := 1; k <= n; k++ {
			v := binomialTable[n-1][k-1]
			if k < n {
				v += binomialTable[n-1][k]
			}
			// Saturate instead of overflowing; callers that need exact
			// counts beyond int64 are out of scope for this library.
			if v < 0 || binomialTable[n-1][k-1] < 0 {
				v = math.MaxInt64
			}
			binomialTable[n][k] = v
		}
	}
}

// Binomial returns C(n, k), saturating at math.MaxInt64. It returns 0 for
// k < 0 or k > n, matching the combinatorial convention.
func Binomial(n, k int) int64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if n < binomialTableSize {
		return binomialTable[n][k]
	}
	// Iterative fallback with overflow saturation.
	result := int64(1)
	for i := 1; i <= k; i++ {
		hi := result * int64(n-k+i)
		if result != 0 && hi/result != int64(n-k+i) {
			return math.MaxInt64
		}
		result = hi / int64(i)
	}
	return result
}

// Count returns S_{n,r} = C(n+r-1, n), the number of IOU entries of an
// order-n symmetric tensor with dimension size r (paper Table I).
func Count(order, dim int) int64 {
	if order < 0 || dim < 0 {
		return 0
	}
	if order == 0 {
		return 1
	}
	if dim == 0 {
		return 0
	}
	return Binomial(order+dim-1, order)
}

// Factorial returns n!, saturating at math.MaxInt64.
func Factorial(n int) int64 {
	result := int64(1)
	for i := 2; i <= n; i++ {
		hi := result * int64(i)
		if hi/result != int64(i) {
			return math.MaxInt64
		}
		result = hi
	}
	return result
}

// Multinomial returns n! / (c0! * c1! * ... ), the number of distinct
// permutations of a multiset with the given value multiplicities counts
// (which must sum to n). It computes the quotient incrementally to avoid
// overflow on intermediate factorials.
func Multinomial(counts []int) int64 {
	n := 0
	result := int64(1)
	for _, c := range counts {
		for i := 1; i <= c; i++ {
			n++
			result = result * int64(n) / int64(i)
		}
	}
	return result
}

// PermutationCount returns the number of distinct permutations of the
// (not necessarily sorted) index tuple idx: len(idx)! / prod(mult!).
func PermutationCount(idx []int) int64 {
	mult := make(map[int]int, len(idx))
	for _, v := range idx {
		mult[v]++
	}
	n := 0
	result := int64(1)
	for _, c := range mult {
		for i := 1; i <= c; i++ {
			n++
			result = result * int64(n) / int64(i)
		}
	}
	return result
}

// Rank returns the linear offset of the IOU tuple idx (which must be
// non-decreasing with all values in [0, dim)) in the lexicographic compact
// layout of an order-len(idx) symmetric tensor with dimension size dim.
//
// Tuples are ordered lexicographically: (0,0,0) < (0,0,1) < ... < (0,1,1) <
// ... . For each position a, every admissible smaller leading value v
// contributes Count(n-a-1, dim-v) subsequent completions.
func Rank(idx []int, dim int) int64 {
	n := len(idx)
	var rank int64
	lo := 0
	for a := 0; a < n; a++ {
		j := idx[a]
		for v := lo; v < j; v++ {
			rank += Count(n-a-1, dim-v)
		}
		lo = j
	}
	return rank
}

// Unrank writes into out the IOU tuple at linear offset rank of the compact
// layout with the given order and dimension size. It is the inverse of Rank.
// out must have length order.
func Unrank(rank int64, order, dim int, out []int) {
	lo := 0
	for a := 0; a < order; a++ {
		v := lo
		for {
			block := Count(order-a-1, dim-v)
			if rank < block {
				break
			}
			rank -= block
			v++
		}
		out[a] = v
		lo = v
	}
}

// IsIOU reports whether idx is non-decreasing (index-ordered unique) with
// all values in [0, dim).
func IsIOU(idx []int, dim int) bool {
	prev := 0
	for a, v := range idx {
		if v < 0 || v >= dim {
			return false
		}
		if a > 0 && v < prev {
			return false
		}
		prev = v
	}
	return true
}

// SortedCopy returns a sorted copy of idx (insertion sort; tuples are tiny).
func SortedCopy(idx []int) []int {
	out := make([]int, len(idx))
	copy(out, idx)
	SortIndex(out)
	return out
}

// SortIndex sorts the short index tuple in place with insertion sort,
// which beats sort.Ints for the order<=16 tuples used throughout.
func SortIndex(idx []int) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && idx[j] > v {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

// SymTensor is a dense fully symmetric tensor of the given order and
// dimension size, stored compactly: Data[Rank(idx)] holds the value of every
// permutation of idx.
type SymTensor struct {
	Order int
	Dim   int
	Data  []float64
}

// mustFit panics with a formatted message when ok is false. Allocation
// bounds on the compact layout are a programmer invariant: the drivers
// size dense intermediates from rank and order, which are validated at the
// API boundary long before any allocation happens, so exceeding the bound
// mirrors make's behaviour for impossible allocations. The symlint
// panicpolicy analyzer keeps library panics inside documented helpers like
// this one.
func mustFit(ok bool, format string, args ...any) {
	if ok {
		return
	}
	panic(fmt.Sprintf(format, args...))
}

// NewSymTensor allocates a zero symmetric tensor. It panics if the compact
// size does not fit in an int, mirroring make's behaviour for impossible
// allocations.
func NewSymTensor(order, dim int) *SymTensor {
	size := Count(order, dim)
	mustFit(size <= math.MaxInt32*64, "dense: compact symmetric tensor order=%d dim=%d too large (%d entries)", order, dim, size)
	return &SymTensor{Order: order, Dim: dim, Data: make([]float64, size)}
}

// At returns the entry at the (arbitrary-permutation) index idx.
func (t *SymTensor) At(idx ...int) float64 {
	s := SortedCopy(idx)
	return t.Data[Rank(s, t.Dim)]
}

// Set stores v at every permutation of idx.
func (t *SymTensor) Set(v float64, idx ...int) {
	s := SortedCopy(idx)
	t.Data[Rank(s, t.Dim)] = v
}

// NumEntries returns the compact entry count S_{order,dim}.
func (t *SymTensor) NumEntries() int { return len(t.Data) }

// FullSize returns dim^order, the entry count of the expanded tensor,
// saturating at math.MaxInt64.
func (t *SymTensor) FullSize() int64 { return Pow64(int64(t.Dim), t.Order) }

// Pow64 returns base^exp for non-negative exp, saturating at math.MaxInt64.
func Pow64(base int64, exp int) int64 {
	result := int64(1)
	for i := 0; i < exp; i++ {
		hi := result * base
		if base != 0 && hi/base != result {
			return math.MaxInt64
		}
		result = hi
	}
	return result
}

// Expand materializes the full dense tensor in row-major layout
// (last index fastest). Intended for tests and tiny examples only.
func (t *SymTensor) Expand() []float64 {
	full := t.FullSize()
	out := make([]float64, full)
	idx := make([]int, t.Order)
	for lin := int64(0); lin < full; lin++ {
		rem := lin
		for a := t.Order - 1; a >= 0; a-- {
			idx[a] = int(rem % int64(t.Dim))
			rem /= int64(t.Dim)
		}
		s := SortedCopy(idx)
		out[lin] = t.Data[Rank(s, t.Dim)]
	}
	return out
}

// PermCounts returns the vector p of paper Property 3: p[i] is the number
// of distinct permutations of the i-th IOU tuple of the compact layout with
// the given order and dimension size. It is computed once per (order, dim)
// by the Tucker drivers and memoized by the caller.
func PermCounts(order, dim int) []float64 {
	n := Count(order, dim)
	p := make([]float64, n)
	idx := make([]int, order)
	i := 0
	ForEachIOU(order, dim, func(tuple []int) {
		copy(idx, tuple)
		p[i] = float64(PermutationCount(idx))
		i++
	})
	return p
}
