package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 5, 252},
		{14, 7, 3432}, {52, 5, 2598960}, {3, 4, 0}, {3, -1, 0}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	for n := 2; n < 60; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at n=%d k=%d", n, k)
			}
		}
	}
}

func TestBinomialLargeFallback(t *testing.T) {
	// n >= binomialTableSize exercises the iterative path.
	if got := Binomial(130, 1); got != 130 {
		t.Errorf("Binomial(130,1) = %d, want 130", got)
	}
	if got := Binomial(130, 2); got != 130*129/2 {
		t.Errorf("Binomial(130,2) = %d, want %d", got, 130*129/2)
	}
	if got := Binomial(200, 100); got != math.MaxInt64 {
		t.Errorf("Binomial(200,100) should saturate, got %d", got)
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		order, dim int
		want       int64
	}{
		{3, 2, 4},    // paper's example tensor T: 4 IOU entries
		{2, 3, 6},    // upper triangle incl. diagonal of 3x3
		{0, 5, 1},    // single scalar
		{4, 1, 1},    // all-ones index
		{5, 0, 0},    // empty dimension
		{6, 4, 84},   // C(9,6)
		{13, 4, 560}, // order-14 tensor's level-13, rank-4 compact size C(16,13)
	}
	for _, c := range cases {
		if got := Count(c.order, c.dim); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.order, c.dim, got, c.want)
		}
	}
}

// Count must equal the number of tuples ForEachIOU visits.
func TestCountMatchesIteration(t *testing.T) {
	for order := 1; order <= 6; order++ {
		for dim := 1; dim <= 5; dim++ {
			n := 0
			ForEachIOU(order, dim, func([]int) { n++ })
			if int64(n) != Count(order, dim) {
				t.Errorf("order=%d dim=%d: iterated %d, Count=%d", order, dim, n, Count(order, dim))
			}
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if Factorial(30) != math.MaxInt64 {
		t.Error("Factorial(30) should saturate")
	}
}

func TestMultinomial(t *testing.T) {
	cases := []struct {
		counts []int
		want   int64
	}{
		{[]int{3}, 1},        // (a,a,a): 1 permutation
		{[]int{2, 1}, 3},     // (a,a,b): 3
		{[]int{1, 1, 1}, 6},  // distinct: 3! = 6
		{[]int{2, 2}, 6},     // (a,a,b,b): 4!/(2!2!)
		{[]int{1, 2, 3}, 60}, // 6!/(1!2!3!)
		{nil, 1},
	}
	for _, c := range cases {
		if got := Multinomial(c.counts); got != c.want {
			t.Errorf("Multinomial(%v) = %d, want %d", c.counts, got, c.want)
		}
	}
}

func TestPermutationCount(t *testing.T) {
	cases := []struct {
		idx  []int
		want int64
	}{
		{[]int{1, 3, 5}, 6},
		{[]int{1, 1, 3}, 3},
		{[]int{7, 7, 7, 7}, 1},
		{[]int{0, 1, 1, 2, 2, 2}, 60},
		{[]int{4}, 1},
	}
	for _, c := range cases {
		if got := PermutationCount(c.idx); got != c.want {
			t.Errorf("PermutationCount(%v) = %d, want %d", c.idx, got, c.want)
		}
	}
}

// Rank must enumerate 0,1,2,... in the exact order ForEachIOU produces.
func TestRankMatchesIterationOrder(t *testing.T) {
	for order := 1; order <= 5; order++ {
		for dim := 1; dim <= 5; dim++ {
			want := int64(0)
			ForEachIOU(order, dim, func(idx []int) {
				if got := Rank(idx, dim); got != want {
					t.Fatalf("order=%d dim=%d idx=%v: Rank=%d, want %d", order, dim, idx, got, want)
				}
				want++
			})
		}
	}
}

func TestUnrankInvertsRank(t *testing.T) {
	out := make([]int, 4)
	for order := 1; order <= 4; order++ {
		dim := 5
		total := Count(order, dim)
		for r := int64(0); r < total; r++ {
			Unrank(r, order, dim, out[:order])
			if got := Rank(out[:order], dim); got != r {
				t.Fatalf("Unrank(%d) = %v, Rank back = %d", r, out[:order], got)
			}
			if !IsIOU(out[:order], dim) {
				t.Fatalf("Unrank(%d) = %v not IOU", r, out[:order])
			}
		}
	}
}

func TestRankUnrankProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 1 + rng.Intn(8)
		dim := 1 + rng.Intn(9)
		idx := make([]int, order)
		for i := range idx {
			idx[i] = rng.Intn(dim)
		}
		SortIndex(idx)
		r := Rank(idx, dim)
		out := make([]int, order)
		Unrank(r, order, dim, out)
		for i := range idx {
			if idx[i] != out[i] {
				return false
			}
		}
		return r >= 0 && r < Count(order, dim)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIsIOU(t *testing.T) {
	if !IsIOU([]int{0, 0, 1}, 2) {
		t.Error("(0,0,1) should be IOU in dim 2")
	}
	if IsIOU([]int{1, 0}, 2) {
		t.Error("(1,0) is not IOU")
	}
	if IsIOU([]int{0, 2}, 2) {
		t.Error("value 2 out of range for dim 2")
	}
	if IsIOU([]int{-1}, 2) {
		t.Error("negative index is not IOU")
	}
	if !IsIOU(nil, 2) {
		t.Error("empty tuple is vacuously IOU")
	}
}

func TestSortIndex(t *testing.T) {
	idx := []int{5, 3, 1, 3}
	SortIndex(idx)
	want := []int{1, 3, 3, 5}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SortIndex = %v, want %v", idx, want)
		}
	}
}

// The paper's §II-A example: order-3 2x2x2 symmetric tensor with IOU values
// [1,2,3,4] at (0,0,0),(0,0,1),(0,1,1),(1,1,1).
func TestSymTensorPaperExample(t *testing.T) {
	tt := NewSymTensor(3, 2)
	tt.Set(1, 0, 0, 0)
	tt.Set(2, 0, 0, 1)
	tt.Set(3, 0, 1, 1)
	tt.Set(4, 1, 1, 1)
	for i, want := range []float64{1, 2, 3, 4} {
		if tt.Data[i] != want {
			t.Errorf("Data[%d] = %v, want %v", i, tt.Data[i], want)
		}
	}
	// All permutations of (0,0,1) read the same value 2.
	if tt.At(0, 0, 1) != 2 || tt.At(0, 1, 0) != 2 || tt.At(1, 0, 0) != 2 {
		t.Error("permutations of (0,0,1) disagree")
	}
	if tt.At(0, 1, 1) != 3 || tt.At(1, 0, 1) != 3 || tt.At(1, 1, 0) != 3 {
		t.Error("permutations of (0,1,1) disagree")
	}
	full := tt.Expand()
	want := []float64{1, 2, 2, 3, 2, 3, 3, 4}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("Expand = %v, want %v", full, want)
		}
	}
}

func TestSymTensorExpandSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tt := NewSymTensor(3, 4)
	for i := range tt.Data {
		tt.Data[i] = rng.NormFloat64()
	}
	full := tt.Expand()
	dim := int64(tt.Dim)
	at := func(a, b, c int) float64 {
		return full[int64(a)*dim*dim+int64(b)*dim+int64(c)]
	}
	for a := 0; a < tt.Dim; a++ {
		for b := 0; b < tt.Dim; b++ {
			for c := 0; c < tt.Dim; c++ {
				v := at(a, b, c)
				if v != at(a, c, b) || v != at(b, a, c) || v != at(c, b, a) {
					t.Fatalf("expanded tensor not symmetric at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestPow64(t *testing.T) {
	if Pow64(3, 4) != 81 {
		t.Error("3^4 != 81")
	}
	if Pow64(10, 0) != 1 {
		t.Error("10^0 != 1")
	}
	if Pow64(2, 63) != math.MaxInt64 {
		t.Error("2^63 should saturate")
	}
	if Pow64(400, 12) != math.MaxInt64 {
		t.Error("400^12 should saturate")
	}
}

func TestPermCounts(t *testing.T) {
	// Order 2, dim 2: IOU tuples (0,0),(0,1),(1,1) with 1,2,1 permutations.
	p := PermCounts(2, 2)
	want := []float64{1, 2, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PermCounts(2,2) = %v, want %v", p, want)
		}
	}
	// Sum of permutation counts must equal the full size dim^order.
	for order := 1; order <= 5; order++ {
		for dim := 1; dim <= 4; dim++ {
			p := PermCounts(order, dim)
			sum := 0.0
			for _, v := range p {
				sum += v
			}
			if sum != float64(Pow64(int64(dim), order)) {
				t.Errorf("order=%d dim=%d: sum(p)=%v, want %d", order, dim, sum, Pow64(int64(dim), order))
			}
		}
	}
}
