package dense

import (
	"math/rand"
	"reflect"
	"testing"
)

// collect gathers all tuples an iteration strategy produces.
func collect(iter func(order, dim int, f func([]int)), order, dim int) [][]int {
	var out [][]int
	iter(order, dim, func(idx []int) {
		c := make([]int, len(idx))
		copy(c, idx)
		out = append(out, c)
	})
	return out
}

// All three iteration strategies must visit identical tuples in identical
// order; this is the correctness half of the §VI-B.4 ablation.
func TestIterationStrategiesAgree(t *testing.T) {
	for order := 1; order <= 6; order++ {
		for dim := 1; dim <= 5; dim++ {
			gen := collect(ForEachIOU, order, dim)
			rec := collect(ForEachIOURecursive, order, dim)
			bt := collect(ForEachIOUBoundaryTrace, order, dim)
			if !reflect.DeepEqual(gen, rec) {
				t.Fatalf("order=%d dim=%d: generated vs recursive differ", order, dim)
			}
			if !reflect.DeepEqual(gen, bt) {
				t.Fatalf("order=%d dim=%d: generated vs boundary-trace differ", order, dim)
			}
		}
	}
}

// Orders beyond MaxGenOrder must fall back to recursion transparently.
func TestForEachIOUBeyondGenOrder(t *testing.T) {
	order := MaxGenOrder + 1
	dim := 2
	n := 0
	ForEachIOU(order, dim, func(idx []int) {
		if len(idx) != order {
			t.Fatalf("tuple length %d, want %d", len(idx), order)
		}
		n++
	})
	if int64(n) != Count(order, dim) {
		t.Fatalf("visited %d tuples, want %d", n, Count(order, dim))
	}
}

func TestForEachIOUDegenerate(t *testing.T) {
	n := 0
	ForEachIOU(3, 0, func([]int) { n++ })
	if n != 0 {
		t.Error("dim=0 should produce no tuples")
	}
	n = 0
	ForEachIOUBoundaryTrace(3, 0, func([]int) { n++ })
	if n != 0 {
		t.Error("boundary-trace dim=0 should produce no tuples")
	}
	n = 0
	ForEachIOU(1, 1, func(idx []int) {
		if idx[0] != 0 {
			t.Error("single tuple should be (0)")
		}
		n++
	})
	if n != 1 {
		t.Error("order=1 dim=1 should produce exactly one tuple")
	}
}

// outerReference computes one Algorithm-1 term by brute force: for each IOU
// tuple j of the order-l layout, dst[Rank(j)] += u[j_l] * src[Rank(j_prefix)].
func outerReference(order int, dst, src, u []float64, dim int) {
	ForEachIOU(order, dim, func(idx []int) {
		dst[Rank(idx, dim)] += u[idx[order-1]] * src[Rank(idx[:order-1], dim)]
	})
}

func randomVec(rng *rand.Rand, n int64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestOuterAccumVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for order := 1; order <= 7; order++ {
		for _, dim := range []int{1, 2, 3, 5, 8} {
			src := randomVec(rng, Count(order-1, dim))
			u := randomVec(rng, int64(dim))
			want := make([]float64, Count(order, dim))
			outerReference(order, want, src, u, dim)

			for name, fn := range map[string]func(int, []float64, []float64, []float64, int){
				"generated":   OuterAccum,
				"recursive":   OuterAccumRecursive,
				"indexMapped": OuterAccumIndexMapped,
			} {
				got := make([]float64, Count(order, dim))
				fn(order, got, src, u, dim)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s order=%d dim=%d: entry %d = %v, want %v", name, order, dim, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// OuterAccum must accumulate (+=), not overwrite.
func TestOuterAccumAccumulates(t *testing.T) {
	dim := 3
	order := 2
	src := []float64{1, 2, 3}
	u := []float64{10, 20, 30}
	dst := make([]float64, Count(order, dim))
	for i := range dst {
		dst[i] = 100
	}
	OuterAccum(order, dst, src, u, dim)
	// First entry is (0,0): 100 + u[0]*src[0] = 110.
	if dst[0] != 110 {
		t.Errorf("dst[0] = %v, want 110", dst[0])
	}
}

func TestOuterAccumBeyondGenOrder(t *testing.T) {
	order := MaxGenOrder + 1
	dim := 2
	rng := rand.New(rand.NewSource(1))
	src := randomVec(rng, Count(order-1, dim))
	u := randomVec(rng, int64(dim))
	got := make([]float64, Count(order, dim))
	OuterAccum(order, got, src, u, dim)
	want := make([]float64, Count(order, dim))
	outerReference(order, want, src, u, dim)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAxpyCompact(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := []float64{10, 20, 30}
	AxpyCompact(2, src, dst)
	want := []float64{12, 24, 36}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AxpyCompact = %v, want %v", dst, want)
		}
	}
}

// Exercise every generated specialization (orders 1..MaxGenOrder) against
// the recursive reference, for both the iterator and the outer-product
// kernel. Small dims keep the compact sizes tiny even at order 16.
func TestAllGeneratedOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for order := 1; order <= MaxGenOrder; order++ {
		for _, dim := range []int{1, 2, 3} {
			// Iterator agreement.
			gen := collect(ForEachIOU, order, dim)
			rec := collect(ForEachIOURecursive, order, dim)
			if !reflect.DeepEqual(gen, rec) {
				t.Fatalf("order=%d dim=%d: generated iterator differs from recursive", order, dim)
			}
			// Outer-product agreement.
			src := randomVec(rng, Count(order-1, dim))
			u := randomVec(rng, int64(dim))
			want := make([]float64, Count(order, dim))
			OuterAccumRecursive(order, want, src, u, dim)
			got := make([]float64, Count(order, dim))
			OuterAccum(order, got, src, u, dim)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order=%d dim=%d: generated outer product differs at %d", order, dim, i)
				}
			}
		}
	}
}

// The generated dispatchers must reject out-of-range orders loudly.
func TestGeneratedDispatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("forEachIOUGen beyond MaxGenOrder should panic")
		}
	}()
	forEachIOUGen(MaxGenOrder+1, 2, func([]int) {})
}

func TestGeneratedOuterDispatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("outerAccumGen beyond MaxGenOrder should panic")
		}
	}()
	outerAccumGen(MaxGenOrder+1, nil, nil, nil, 2)
}
