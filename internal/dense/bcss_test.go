package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewBCSSValidation(t *testing.T) {
	if _, err := NewBCSS(3, 8, 2); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ order, dim, block int }{
		{0, 8, 2}, {MaxOrder + 1, 8, 2}, {3, 8, 3}, {3, 8, 0}, {3, 0, 1},
	} {
		if _, err := NewBCSS(bad.order, bad.dim, bad.block); err == nil {
			t.Errorf("NewBCSS(%v) should fail", bad)
		}
	}
}

func TestBCSSSizeAndOverhead(t *testing.T) {
	// Block 1: no padding, identical to compact.
	l1, err := NewBCSS(3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Size() != Count(3, 6) {
		t.Errorf("block-1 size %d, want %d", l1.Size(), Count(3, 6))
	}
	if l1.Overhead() != 1 {
		t.Errorf("block-1 overhead %v, want 1", l1.Overhead())
	}
	// Block = dim: one full brick.
	lFull, err := NewBCSS(3, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if lFull.Size() != 216 {
		t.Errorf("full-block size %d, want 216", lFull.Size())
	}
	if lFull.Overhead() <= 1 {
		t.Error("full-block overhead should exceed 1")
	}
	// Overhead shrinks as blocks shrink.
	l2, _ := NewBCSS(3, 6, 2)
	l3, _ := NewBCSS(3, 6, 3)
	if !(l2.Overhead() < l3.Overhead() && l3.Overhead() < lFull.Overhead()) {
		t.Errorf("overhead not monotone: %v %v %v", l2.Overhead(), l3.Overhead(), lFull.Overhead())
	}
}

func TestBCSSCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ order, dim, block int }{
		{2, 6, 2}, {3, 6, 3}, {3, 4, 2}, {4, 4, 2}, {2, 5, 5},
	} {
		l, err := NewBCSS(tc.order, tc.dim, tc.block)
		if err != nil {
			t.Fatal(err)
		}
		compact := make([]float64, Count(tc.order, tc.dim))
		for i := range compact {
			compact[i] = rng.NormFloat64()
		}
		back := l.ToCompact(l.FromCompact(compact))
		for i := range compact {
			if back[i] != compact[i] {
				t.Fatalf("%+v: round trip differs at %d", tc, i)
			}
		}
	}
}

// FromCompact must place the symmetric duplicate at every padded position.
func TestBCSSPaddingConsistent(t *testing.T) {
	l, err := NewBCSS(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	compact := make([]float64, Count(2, 4))
	for i := range compact {
		compact[i] = float64(i + 1)
	}
	buf := l.FromCompact(compact)
	// Entry (1,0) lives in block (0,0) at padded position; must equal (0,1).
	if buf[l.Offset([]int{1, 0})] != buf[l.Offset([]int{0, 1})] {
		t.Error("padded duplicate differs from IOU value")
	}
}

// The BCSS outer product must agree with the compact kernel after
// extraction — the correctness half of the storage ablation.
func TestOuterAccumBCSSMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ order, dim, block int }{
		{2, 6, 2}, {3, 6, 2}, {3, 6, 3}, {4, 4, 2}, {5, 4, 2}, {3, 6, 6},
	} {
		dstL, err := NewBCSS(tc.order, tc.dim, tc.block)
		if err != nil {
			t.Fatal(err)
		}
		srcL, err := NewBCSS(tc.order-1, tc.dim, tc.block)
		if err != nil {
			t.Fatal(err)
		}
		srcCompact := make([]float64, Count(tc.order-1, tc.dim))
		for i := range srcCompact {
			srcCompact[i] = rng.NormFloat64()
		}
		u := make([]float64, tc.dim)
		for i := range u {
			u[i] = rng.NormFloat64()
		}

		want := make([]float64, Count(tc.order, tc.dim))
		OuterAccum(tc.order, want, srcCompact, u, tc.dim)

		dst := make([]float64, dstL.Size())
		OuterAccumBCSS(dstL, srcL, dst, srcL.FromCompact(srcCompact), u)
		got := dstL.ToCompact(dst)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%+v: entry %d = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

// Repeated application (a two-level chain) must also agree, exercising the
// case where the BCSS source itself came from a BCSS outer product with
// padded entries populated by the kernel rather than FromCompact.
func TestOuterAccumBCSSChain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dim, block := 6, 3
	u1 := make([]float64, dim)
	u2 := make([]float64, dim)
	base := make([]float64, dim) // order-1 "compact" = plain vector
	for i := 0; i < dim; i++ {
		u1[i] = rng.NormFloat64()
		u2[i] = rng.NormFloat64()
		base[i] = rng.NormFloat64()
	}

	// Compact chain: order1 -> order2 -> order3.
	c2 := make([]float64, Count(2, dim))
	OuterAccum(2, c2, base, u1, dim)
	c3 := make([]float64, Count(3, dim))
	OuterAccum(3, c3, c2, u2, dim)

	// BCSS chain.
	l1, _ := NewBCSS(1, dim, block)
	l2, _ := NewBCSS(2, dim, block)
	l3, _ := NewBCSS(3, dim, block)
	b1 := l1.FromCompact(base)
	b2 := make([]float64, l2.Size())
	OuterAccumBCSS(l2, l1, b2, b1, u1)
	b3 := make([]float64, l3.Size())
	OuterAccumBCSS(l3, l2, b3, b2, u2)

	got := l3.ToCompact(b3)
	for i := range c3 {
		if math.Abs(got[i]-c3[i]) > 1e-12 {
			t.Fatalf("chained BCSS differs at %d: %v vs %v", i, got[i], c3[i])
		}
	}
}
