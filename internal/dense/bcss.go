package dense

import "fmt"

// BCSS implements the Blocked Compact Symmetric Storage of Schatz et al.
// [15] (paper §VII related work): the index space [0,Dim)^Order is tiled
// into blocks of edge Block, only index-ordered-unique *block* tuples are
// stored, and each stored block is a full dense Block^Order brick. Blocks
// that sit on the "diagonal" (repeated block coordinates) carry redundant
// padding entries, trading storage for perfectly regular dense inner loops
// — the design alternative to this module's exactly-compact linear layout,
// benchmarked by the storage ablation.
type BCSS struct {
	Order int
	Dim   int
	Block int
	// nb is the number of blocks per mode (Block must divide Dim).
	nb int
	// blockSize is Block^Order, the dense brick size.
	blockSize int64
}

// NewBCSS validates and returns a BCSS layout descriptor.
func NewBCSS(order, dim, block int) (*BCSS, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("dense: BCSS order %d out of range", order)
	}
	if block < 1 || dim < 1 || dim%block != 0 {
		return nil, fmt.Errorf("dense: BCSS block %d must divide dim %d", block, dim)
	}
	return &BCSS{
		Order:     order,
		Dim:       dim,
		Block:     block,
		nb:        dim / block,
		blockSize: Pow64(int64(block), order),
	}, nil
}

// NumBlocks returns the stored (IOU) block-tuple count.
func (l *BCSS) NumBlocks() int64 { return Count(l.Order, l.nb) }

// Size returns the total stored float count including padding.
func (l *BCSS) Size() int64 { return l.NumBlocks() * l.blockSize }

// Overhead returns the storage ratio against the exactly compact layout
// (1.0 = no padding; grows as Block grows relative to Dim).
func (l *BCSS) Overhead() float64 {
	return float64(l.Size()) / float64(Count(l.Order, l.Dim))
}

// Offset returns the storage offset of the (not necessarily IOU) global
// index tuple idx, which must have non-decreasing *block* coordinates.
// For sorted idx this always holds.
func (l *BCSS) Offset(idx []int) int64 {
	blocks := make([]int, len(idx))
	for i, v := range idx {
		blocks[i] = v / l.Block
	}
	off := Rank(blocks, l.nb) * l.blockSize
	// In-block linearization, last index fastest.
	var lin int64
	for _, v := range idx {
		lin = lin*int64(l.Block) + int64(v%l.Block)
	}
	return off + lin
}

// OuterAccumBCSS performs one Algorithm-1 term on BCSS storage: dst is the
// order-l BCSS buffer, src the order-(l-1) buffer with the same Dim/Block,
// and u a factor row of length Dim. For every stored (IOU) block tuple the
// inner loops are fully dense — no per-element index logic, the regularity
// BCSS buys with padding.
func OuterAccumBCSS(dstLayout, srcLayout *BCSS, dst, src, u []float64) {
	l := dstLayout.Order
	b := dstLayout.Block
	srcBlockSize := srcLayout.blockSize
	// Enumerate stored block tuples; the per-tuple Rank cost is amortized
	// over the Block^l dense brick work.
	ForEachIOU(l, dstLayout.nb, func(bt []int) {
		dstBase := Rank(bt, dstLayout.nb) * dstLayout.blockSize
		srcBase := Rank(bt[:l-1], srcLayout.nb) * srcBlockSize
		uSeg := u[bt[l-1]*b : bt[l-1]*b+b]
		pos := dstBase
		for p := int64(0); p < srcBlockSize; p++ {
			s := src[srcBase+p]
			for j := 0; j < b; j++ {
				dst[pos] += uSeg[j] * s
				pos++
			}
		}
	})
}

// ToCompact extracts the exactly compact representation from a BCSS buffer
// (reading each IOU entry once; padded duplicates are ignored).
func (l *BCSS) ToCompact(bcss []float64) []float64 {
	out := make([]float64, Count(l.Order, l.Dim))
	i := 0
	ForEachIOU(l.Order, l.Dim, func(idx []int) {
		out[i] = bcss[l.Offset(idx)]
		i++
	})
	return out
}

// FromCompact expands a compact buffer into BCSS storage, filling padded
// positions with their symmetric duplicates.
func (l *BCSS) FromCompact(compact []float64) []float64 {
	out := make([]float64, l.Size())
	idx := make([]int, l.Order)
	sorted := make([]int, l.Order)
	// Iterate all stored positions: IOU block tuples x full bricks.
	ForEachIOU(l.Order, l.nb, func(bt []int) {
		base := Rank(bt, l.nb) * l.blockSize
		// Enumerate the brick.
		for p := int64(0); p < l.blockSize; p++ {
			rem := p
			for a := l.Order - 1; a >= 0; a-- {
				idx[a] = bt[a]*l.Block + int(rem%int64(l.Block))
				rem /= int64(l.Block)
			}
			copy(sorted, idx)
			SortIndex(sorted)
			out[base+p] = compact[Rank(sorted, l.Dim)]
		}
	})
	return out
}
