package dense

// This file holds the runtime-dispatched iteration strategies over the
// compact symmetric layout. The fast path dispatches to fully unrolled loop
// nests in iterate_gen.go (produced by tools/geniterate — the Go analog of
// the paper's C++ template metaprogramming, §III-C.3). The recursive and
// boundary-trace strategies exist for orders beyond MaxGenOrder and for the
// §VI-B.4 index-iteration ablation, respectively.

// ForEachIOU invokes f for every IOU tuple (j1 <= ... <= jOrder, values in
// [0, dim)) in lexicographic order, i.e. in increasing compact-layout
// offset. The tuple slice is reused between calls; f must not retain it.
func ForEachIOU(order, dim int, f func(idx []int)) {
	if order <= MaxGenOrder {
		forEachIOUGen(order, dim, f)
		return
	}
	idx := make([]int, order)
	forEachIOURec(order, dim, 0, 0, idx, f)
}

// ForEachIOURecursive is the pure recursive-closure strategy, exported for
// the index-iteration ablation benchmarks.
func ForEachIOURecursive(order, dim int, f func(idx []int)) {
	idx := make([]int, order)
	forEachIOURec(order, dim, 0, 0, idx, f)
}

func forEachIOURec(order, dim, depth, start int, idx []int, f func(idx []int)) {
	if depth == order {
		f(idx)
		return
	}
	for j := start; j < dim; j++ {
		idx[depth] = j
		forEachIOURec(order, dim, depth+1, j, idx, f)
	}
}

// ForEachIOUBoundaryTrace iterates the compact layout with the coupled
// for/while boundary-tracing scheme of Ballard et al. [16]: advance a single
// multi-index by incrementing the rightmost position that has not hit the
// dimension boundary and resetting everything to its right. This is the
// baseline the paper's metaprogramming approach is measured against.
func ForEachIOUBoundaryTrace(order, dim int, f func(idx []int)) {
	if dim <= 0 || order <= 0 {
		if order == 0 {
			f(nil)
		}
		return
	}
	idx := make([]int, order)
	for {
		f(idx)
		// Trace back over positions that sit at the boundary dim-1.
		a := order - 1
		for a >= 0 && idx[a] == dim-1 {
			a--
		}
		if a < 0 {
			return
		}
		idx[a]++
		v := idx[a]
		for b := a + 1; b < order; b++ {
			idx[b] = v
		}
	}
}

// OuterAccum performs one term of paper Algorithm 1: for every IOU tuple
// (j1 <= ... <= j_order) of the compact order-`order` layout,
//
//	dst[loc_l] += u[j_order] * src[loc_{l-1}]
//
// where loc_l walks dst (compact order-`order`) and loc_{l-1} walks src
// (compact order-`order-1`, the prefix tuple). Both walks are sequential,
// so no index mapping is ever computed. dst and src must have lengths
// Count(order, dim) and Count(order-1, dim); u must have length >= dim.
func OuterAccum(order int, dst, src, u []float64, dim int) {
	if order <= MaxGenOrder {
		outerAccumGen(order, dst, src, u, dim)
		return
	}
	var locL, locP int
	outerAccumRec(order, 0, 0, dst, src, u, dim, &locL, &locP)
}

// OuterAccumRecursive is the recursive-closure variant of OuterAccum,
// exported for the ablation benchmarks.
func OuterAccumRecursive(order int, dst, src, u []float64, dim int) {
	var locL, locP int
	outerAccumRec(order, 0, 0, dst, src, u, dim, &locL, &locP)
}

func outerAccumRec(order, depth, start int, dst, src, u []float64, dim int, locL, locP *int) {
	if depth == order-1 {
		s := src[*locP]
		l := *locL
		for j := start; j < dim; j++ {
			dst[l] += u[j] * s
			l++
		}
		*locL = l
		*locP++
		return
	}
	for j := start; j < dim; j++ {
		outerAccumRec(order, depth+1, j, dst, src, u, dim, locL, locP)
	}
}

// OuterAccumIndexMapped is the index-mapping variant used as the ablation
// baseline: it iterates IOU tuples with boundary tracing and computes the
// source offset with an explicit Rank call per prefix — the O(N+R) per-entry
// mapping cost the paper eliminates (§III-C.2).
func OuterAccumIndexMapped(order int, dst, src, u []float64, dim int) {
	locL := 0
	ForEachIOUBoundaryTrace(order, dim, func(idx []int) {
		locP := Rank(idx[:order-1], dim)
		dst[locL] += u[idx[order-1]] * src[locP]
		locL++
	})
}

// AxpyCompact accumulates dst += alpha * src over equal-length compact
// buffers. Shared by the Y-row accumulation in all SymProp kernels.
func AxpyCompact(alpha float64, src, dst []float64) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += alpha * v
	}
}
