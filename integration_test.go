package symprop_test

// Cross-module integration tests: full pipelines through the public API,
// exercising file formats, generators, both decompositions, and the
// clustering post-processing together.

import (
	"bytes"
	"math"
	"path/filepath"
	"strconv"
	"testing"

	symprop "github.com/symprop/symprop"
)

// Pipeline: generate -> save (text) -> load -> decompose -> save factor ->
// reload tensor as binary -> decompose again -> identical results.
func TestPipelineFileFormats(t *testing.T) {
	dir := t.TempDir()
	x, err := symprop.RandomTensor(4, 25, 120, 17)
	if err != nil {
		t.Fatal(err)
	}

	txt := filepath.Join(dir, "x.tns")
	if err := x.Save(txt); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "x.stnb")
	if err := symprop.SaveTensorBinary(x, bin); err != nil {
		t.Fatal(err)
	}

	fromTxt, err := symprop.LoadTensor(txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := symprop.LoadTensor(bin)
	if err != nil {
		t.Fatal(err)
	}

	opts := symprop.Options{Rank: 5, MaxIters: 8, Seed: 3}
	r1, err := symprop.Decompose(fromTxt, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := symprop.Decompose(fromBin, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.FinalRelError()-r2.FinalRelError()) > 1e-12 {
		t.Errorf("text and binary pipelines diverge: %v vs %v",
			r1.FinalRelError(), r2.FinalRelError())
	}
}

// Pipeline: COO export/import round trip feeding a decomposition.
func TestPipelineCOOImport(t *testing.T) {
	x, err := symprop.RandomTensor(3, 12, 40, 19)
	if err != nil {
		t.Fatal(err)
	}
	// Export the expanded non-zeros as general COO text.
	var buf bytes.Buffer
	x.ForEachExpanded(func(idx []int32, val float64) {
		for _, v := range idx {
			writeInt(&buf, int(v)+1)
			buf.WriteByte(' ')
		}
		writeFloat(&buf, val)
		buf.WriteByte('\n')
	})
	back, err := symprop.ReadCOOTensor(&buf, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatalf("COO round trip changed nnz: %d vs %d", back.NNZ(), x.NNZ())
	}
	if _, err := symprop.Decompose(back, symprop.Options{Rank: 3, MaxIters: 3}); err != nil {
		t.Fatal(err)
	}
}

// Pipeline: hypergraph -> normalized tensor -> Tucker -> k-means vs CP
// community signal; NMI of the two clusterings should be far above chance
// on a strongly planted instance.
func TestPipelineTuckerVsCPClusterings(t *testing.T) {
	edges := &bytes.Buffer{}
	// Two 8-node cliques of triangles.
	for base := 0; base < 16; base += 8 {
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				for c := b + 1; c < 8; c++ {
					writeInt(edges, base+a)
					edges.WriteByte(' ')
					writeInt(edges, base+b)
					edges.WriteByte(' ')
					writeInt(edges, base+c)
					edges.WriteByte('\n')
				}
			}
		}
	}
	h, err := symprop.ReadHypergraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	x, err := h.ToTensor(3)
	if err != nil {
		t.Fatal(err)
	}
	xn := x.NormalizeByDegree()

	tuckerRes, err := symprop.Decompose(xn, symprop.Options{Rank: 2, MaxIters: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cpRes, err := symprop.DecomposeCP(xn, symprop.CPOptions{Rank: 2, MaxIters: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	lab1 := symprop.KMeansRows(tuckerRes.U, 2, 5)
	lab2 := symprop.KMeansRows(cpRes.U, 2, 5)
	truth := make([]int, h.Nodes)
	for i := range truth {
		if i >= 8 {
			truth[i] = 1
		}
	}
	if acc := symprop.ClusterAgreement(truth, lab1[:h.Nodes]); acc < 0.95 {
		t.Errorf("Tucker clustering accuracy %v", acc)
	}
	if acc := symprop.ClusterAgreement(truth, lab2[:h.Nodes]); acc < 0.95 {
		t.Errorf("CP clustering accuracy %v", acc)
	}
	if nmi := symprop.NMI(lab1[:h.Nodes], lab2[:h.Nodes]); nmi < 0.8 {
		t.Errorf("Tucker and CP clusterings disagree: NMI %v", nmi)
	}
}

// The memory budget must propagate end to end through the public API and
// fail cleanly, leaving no partial state.
func TestPipelineBudgetPropagation(t *testing.T) {
	t.Setenv("SYMPROP_MEM_BUDGET", "1M")
	x, err := symprop.RandomTensor(7, 80, 60, 23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := symprop.Decompose(x, symprop.Options{Rank: 8, MaxIters: 2, Algorithm: symprop.HOOI}); err == nil {
		t.Error("1M budget should OOM an order-7 rank-8 HOOI")
	}
	t.Setenv("SYMPROP_MEM_BUDGET", "0")
	if _, err := symprop.Decompose(x, symprop.Options{Rank: 3, MaxIters: 1}); err != nil {
		t.Fatal(err)
	}
}

func writeInt(buf *bytes.Buffer, v int) {
	if v == 0 {
		buf.WriteByte('0')
		return
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	buf.Write(d)
}

func writeFloat(buf *bytes.Buffer, v float64) {
	buf.WriteString(strconv.FormatFloat(v, 'g', 17, 64))
}
