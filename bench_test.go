package symprop

// This file holds the testing.B counterparts of the paper's evaluation
// (§VI): one benchmark family per table/figure. The text-report harness
// with the paper's exact dataset mixes lives in cmd/symprop-bench; these
// benchmarks use compact fixed workloads so `go test -bench=.` finishes in
// minutes while still exposing every comparison the paper draws.
//
// Mapping (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	Fig. 4  -> BenchmarkFig4Operations
//	Fig. 5a -> BenchmarkFig5Rank       Fig. 5b -> BenchmarkFig5Order
//	Fig. 5c -> BenchmarkFig5NNZ       Fig. 5d -> BenchmarkFig5Dim
//	Fig. 6  -> BenchmarkFig6Threads
//	Fig. 7  -> BenchmarkFig7Tucker
//	Fig. 8  -> BenchmarkFig8Phases
//	Fig. 9  -> BenchmarkFig9Convergence (cost per traced sweep)
//	Tab. II -> BenchmarkTable2Kernels (model-predicted scaling points)
//	§VI-B.4 -> BenchmarkIndexIteration

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/symprop/symprop/internal/dense"
	"github.com/symprop/symprop/internal/hypergraph"
	"github.com/symprop/symprop/internal/kernels"
	"github.com/symprop/symprop/internal/linalg"
	"github.com/symprop/symprop/internal/spsym"
	"github.com/symprop/symprop/internal/tucker"
)

func benchTensor(b *testing.B, order, dim, nnz int, seed int64) *spsym.Tensor {
	b.Helper()
	x, err := spsym.Random(spsym.RandomOptions{Order: order, Dim: dim, NNZ: nnz, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return x
}

func benchU(dim, rank int, seed int64) *linalg.Matrix {
	return linalg.RandomNormal(dim, rank, rand.New(rand.NewSource(seed)))
}

// --- Fig. 4: operation comparison on representative Table III shapes -----

func BenchmarkFig4Operations(b *testing.B) {
	cases := []struct {
		name               string
		order, dim, nnz, r int
	}{
		{"contact-school-like/order5-rank12", 5, 245, 2000, 12},
		{"7D-like/order7-rank3", 7, 200, 2000, 3},
		{"walmart-like/order8-rank10", 8, 500, 500, 10},
		{"10D-like/order10-rank5", 10, 200, 200, 5},
	}
	for _, c := range cases {
		x := benchTensor(b, c.order, c.dim, c.nnz, 1)
		u := benchU(c.dim, c.r, 2)
		b.Run("SymProp/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("SymPropTC/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcTC(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The CSS and SPLATT baselines explode combinatorially; bench them
		// only where a single run stays under a second.
		if c.order <= 8 && c.r <= 5 {
			b.Run("CSS/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := kernels.S3TTMcCSS(x, u, kernels.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		if c.order <= 7 {
			splatt, err := kernels.NewSPLATT(x, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("SPLATT/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := splatt.TTMc(u, kernels.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 5 sweeps: one parameter varies, SymProp vs CSS -----------------

func BenchmarkFig5Rank(b *testing.B) {
	x := benchTensor(b, 7, 100, 1000, 3)
	for _, r := range []int{2, 4, 6, 8, 12} {
		u := benchU(100, r, 4)
		b.Run(fmt.Sprintf("SymProp/rank%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r <= 6 {
			b.Run(fmt.Sprintf("CSS/rank%d", r), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := kernels.S3TTMcCSS(x, u, kernels.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig5Order(b *testing.B) {
	for _, order := range []int{4, 6, 8, 10, 12, 14} {
		x := benchTensor(b, order, 100, 500, 5)
		u := benchU(100, 4, 6)
		b.Run(fmt.Sprintf("SymProp/order%d", order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if order <= 8 {
			b.Run(fmt.Sprintf("CSS/order%d", order), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := kernels.S3TTMcCSS(x, u, kernels.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig5NNZ(b *testing.B) {
	u := benchU(200, 4, 8)
	for _, nnz := range []int{500, 1000, 2000, 4000} {
		x := benchTensor(b, 7, 200, nnz, 7)
		b.Run(fmt.Sprintf("SymProp/nnz%d", nnz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5Dim(b *testing.B) {
	for _, dim := range []int{50, 100, 200, 400, 800} {
		x := benchTensor(b, 7, dim, 1000, 9)
		u := benchU(dim, 4, 10)
		b.Run(fmt.Sprintf("SymProp/dim%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SymPropTC/dim%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcTC(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 6: thread scalability ------------------------------------------

func BenchmarkFig6Threads(b *testing.B) {
	x := benchTensor(b, 8, 500, 1000, 11)
	u := benchU(500, 6, 12)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 7: HOOI vs HOQRI end-to-end -------------------------------------

func BenchmarkFig7Tucker(b *testing.B) {
	cases := []struct {
		name               string
		order, dim, nnz, r int
	}{
		{"low-order", 3, 100, 1000, 4},
		{"mid-order", 5, 150, 800, 6},
		{"high-order", 8, 200, 300, 4},
	}
	for _, c := range cases {
		x := benchTensor(b, c.order, c.dim, c.nnz, 13)
		b.Run("HOOI/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tucker.HOOI(x, tucker.Options{Rank: c.r, MaxIters: 3, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("HOQRI/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tucker.HOQRI(x, tucker.Options{Rank: c.r, MaxIters: 3, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 8: phase costs in isolation --------------------------------------

func BenchmarkFig8Phases(b *testing.B) {
	x := benchTensor(b, 5, 300, 1500, 15)
	const r = 8
	u := benchU(300, r, 16)
	yp, err := kernels.S3TTMcSymProp(x, u, kernels.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("TTMc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TimesCore", func(b *testing.B) {
		p := kernels.PermCounts(x.Order-1, r)
		for i := 0; i < b.N; i++ {
			cp := linalg.MulTN(u, yp)
			_ = linalg.MulNTWeighted(yp, cp, p)
		}
	})
	b.Run("SVDViaGram", func(b *testing.B) {
		full := kernels.ExpandCompactColumns(yp, x.Order, r)
		for i := 0; i < b.N; i++ {
			g := linalg.MulNT(full, full)
			if _, err := linalg.TopEigenvectors(g, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QR", func(b *testing.B) {
		p := kernels.PermCounts(x.Order-1, r)
		cp := linalg.MulTN(u, yp)
		a := linalg.MulNTWeighted(yp, cp, p)
		for i := 0; i < b.N; i++ {
			linalg.QRThin(a)
		}
	})
}

// --- Fig. 9: per-sweep cost of the convergence traces ---------------------

func BenchmarkFig9Convergence(b *testing.B) {
	x := benchTensor(b, 5, 245, 1500, 17)
	for _, algo := range []struct {
		name string
		run  func(*spsym.Tensor, tucker.Options) (*tucker.Result, error)
	}{
		{"HOOI", tucker.HOOI},
		{"HOQRI", tucker.HOQRI},
	} {
		b.Run(algo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.run(x, tucker.Options{Rank: 6, MaxIters: 5, Seed: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table II: measured kernel cost at model-predicted scaling points -----

func BenchmarkTable2Kernels(b *testing.B) {
	// The model predicts SP/CSS flop ratios; measure both kernels at the
	// same shape so the report can compare measured vs predicted scaling.
	x := benchTensor(b, 6, 100, 500, 19)
	for _, r := range []int{2, 4, 6} {
		u := benchU(100, r, 20)
		b.Run(fmt.Sprintf("SymProp/rank%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CSS/rank%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernels.S3TTMcCSS(x, u, kernels.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §VI-B.4: index-iteration ablation ------------------------------------

func BenchmarkIndexIteration(b *testing.B) {
	for _, c := range []struct{ order, rank int }{
		{4, 8}, {8, 5}, {12, 4},
	} {
		src := make([]float64, dense.Count(c.order-1, c.rank))
		dst := make([]float64, dense.Count(c.order, c.rank))
		u := make([]float64, c.rank)
		rng := rand.New(rand.NewSource(21))
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		name := fmt.Sprintf("order%d-rank%d", c.order, c.rank)
		b.Run("Generated/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.OuterAccum(c.order, dst, src, u, c.rank)
			}
		})
		b.Run("IndexMapped/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.OuterAccumIndexMapped(c.order, dst, src, u, c.rank)
			}
		})
		b.Run("Recursive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.OuterAccumRecursive(c.order, dst, src, u, c.rank)
			}
		})
	}
}

// --- Related-work storage ablation: compact linear vs BCSS ----------------

func BenchmarkBCSSLayout(b *testing.B) {
	const order, dim = 4, 24
	src := make([]float64, dense.Count(order-1, dim))
	dst := make([]float64, dense.Count(order, dim))
	u := make([]float64, dim)
	rng := rand.New(rand.NewSource(23))
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	b.Run("CompactLinear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dense.OuterAccum(order, dst, src, u, dim)
		}
	})
	for _, block := range []int{2, 4, 8} {
		dstL, err := dense.NewBCSS(order, dim, block)
		if err != nil {
			b.Fatal(err)
		}
		srcL, err := dense.NewBCSS(order-1, dim, block)
		if err != nil {
			b.Fatal(err)
		}
		bSrc := srcL.FromCompact(src)
		bDst := make([]float64, dstL.Size())
		b.Run(fmt.Sprintf("BCSS/block%d", block), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.OuterAccumBCSS(dstL, srcL, bDst, bSrc, u)
			}
		})
	}
}

// --- UCOO baseline (format comparison completeness) ------------------------

func BenchmarkUCOOBaseline(b *testing.B) {
	x := benchTensor(b, 4, 50, 200, 25)
	u := benchU(50, 4, 26)
	b.Run("UCOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcUCOO(x, u, kernels.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SymProp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- CSS "between non-zeros" memoization ablation ---------------------------

func BenchmarkCrossNZCache(b *testing.B) {
	h, err := hypergraph.Planted(hypergraph.PlantedOptions{
		Nodes: 200, Communities: 8, Edges: 2000, MinCard: 3, MaxCard: 5, PIntra: 0.9, Seed: 27,
	})
	if err != nil {
		b.Fatal(err)
	}
	x, err := h.ToTensor(5)
	if err != nil {
		b.Fatal(err)
	}
	u := benchU(x.Dim, 8, 28)
	b.Run("Off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("On", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{CrossNZCacheBytes: 64 << 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Lattice evaluation: generated straight-line vs plan interpreter -------

func BenchmarkLatticeEvaluator(b *testing.B) {
	x, err := spsym.Random(spsym.RandomOptions{
		Order: 6, Dim: 100, NNZ: 500, Seed: 29, ForbidRepeats: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	u := benchU(100, 5, 30)
	b.Run("Generated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Same generated outer products, but the lattice walk goes
			// through the plan interpreter — isolating the straight-line
			// specialization itself.
			if _, err := kernels.S3TTMcSymProp(x, u, kernels.Options{Iteration: kernels.IterInterpreted}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
