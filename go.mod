module github.com/symprop/symprop

go 1.22
