#!/usr/bin/env bash
# resume_smoke.sh — end-to-end checkpoint/resume smoke test.
#
# Builds the CLI, starts a decomposition with periodic checkpointing, kills
# it mid-run with SIGINT, resumes from the snapshot, and verifies that the
# resumed run's convergence trace is bit-identical to an uninterrupted run
# of the same configuration. Exercises the real signal path (NotifyContext →
# cooperative kernel cancel → checkpoint-on-exit → exit status 3) that unit
# tests can't reach in-process.
#
# Usage: scripts/resume_smoke.sh [workdir]
set -euo pipefail

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
echo "resume-smoke: working in $dir"

go build -o "$dir/symprop" ./cmd/symprop
go build -o "$dir/symprop-gen" ./cmd/symprop-gen

# Big enough that 40 HOOI iterations take several seconds — the interrupt
# below must land mid-run.
"$dir/symprop-gen" random -order 3 -dim 400 -nnz 60000 -seed 11 -out "$dir/x.tns"

common=(decompose -rank 8 -algo hooi -iters 40 -tol 0 -seed 7 -workers 2)

echo "resume-smoke: straight run"
"$dir/symprop" "${common[@]}" -convergence "$dir/straight.csv" "$dir/x.tns"

echo "resume-smoke: interrupted run"
"$dir/symprop" "${common[@]}" -checkpoint "$dir/run.ckpt" -checkpoint-every 1 \
    "$dir/x.tns" &
pid=$!
sleep 0.5
kill -INT "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
case $rc in
3)
    echo "resume-smoke: interrupted with checkpoint (exit 3)"
    ;;
0)
    # The run finished before the signal landed (fast machine); the
    # checkpoint still exists, so the resume below is a no-op restart at
    # MaxIters and the comparison still holds.
    echo "resume-smoke: run finished before the interrupt; still checking resume"
    ;;
*)
    echo "resume-smoke: FAIL — interrupted run exited $rc (want 3)" >&2
    exit 1
    ;;
esac
if [[ ! -f "$dir/run.ckpt" ]]; then
    echo "resume-smoke: FAIL — no checkpoint written" >&2
    exit 1
fi

echo "resume-smoke: resumed run"
"$dir/symprop" "${common[@]}" -checkpoint "$dir/run.ckpt" -resume \
    -convergence "$dir/resumed.csv" "$dir/x.tns"

if cmp -s "$dir/straight.csv" "$dir/resumed.csv"; then
    echo "resume-smoke: PASS — resumed trace is bit-identical to the straight run"
else
    echo "resume-smoke: FAIL — traces differ:" >&2
    diff "$dir/straight.csv" "$dir/resumed.csv" >&2 || true
    exit 1
fi
