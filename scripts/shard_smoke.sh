#!/usr/bin/env bash
# shard_smoke.sh — end-to-end sharding smoke test.
#
# Runs the same decomposition through the real CLI unsharded and with
# -shards 4 and requires byte-identical factor files — the bit-identity
# contract of the shard map (docs/SHARDING.md) through the full binary,
# not just the package tests. The sharded run's -metrics artifact must
# pass obscheck, which pins the per-shard plan names (s3ttmc.shard[i],
# shard.fanout, shard.merge) to the registered roster. Finally the shard
# package's determinism matrix and wire-format tests run under -race:
# the fan-out is the one place P engines touch shared kernel state.
#
# Usage: scripts/shard_smoke.sh [workdir]
set -euo pipefail

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
echo "shard-smoke: working in $dir"

go build -o "$dir/symprop" ./cmd/symprop
go build -o "$dir/symprop-gen" ./cmd/symprop-gen
go build -o "$dir/obscheck" ./tools/obscheck

"$dir/symprop-gen" random -order 3 -dim 80 -nnz 800 -seed 5 -out "$dir/x.tns"

iters=6
for algo in hooi hoqri; do
    echo "shard-smoke: $algo unsharded vs -shards 4"
    "$dir/symprop" decompose -rank 4 -algo "$algo" -iters $iters -tol 0 -seed 3 -workers 2 \
        -out "$dir/$algo.single.u" "$dir/x.tns" >/dev/null
    "$dir/symprop" decompose -rank 4 -algo "$algo" -iters $iters -tol 0 -seed 3 -workers 2 \
        -shards 4 -out "$dir/$algo.sharded.u" \
        -metrics "$dir/$algo.sharded.metrics.json" -trace "$dir/$algo.sharded.trace.jsonl" \
        "$dir/x.tns" >/dev/null
    if ! cmp -s "$dir/$algo.single.u" "$dir/$algo.sharded.u"; then
        echo "shard-smoke: FAIL: $algo factors differ between shards=4 and single engine" >&2
        exit 1
    fi
    "$dir/obscheck" -metrics "$dir/$algo.sharded.metrics.json" \
        -trace "$dir/$algo.sharded.trace.jsonl" -sweeps $iters
done

echo "shard-smoke: shard package under -race"
go test -race ./internal/shard/

echo "shard-smoke: PASS"
