#!/usr/bin/env bash
# load_smoke.sh — end-to-end traffic-shaped load smoke test (docs/LOADGEN.md).
#
# Starts a real symprop-serve process, drives ~5 seconds of low-rate
# open-loop traffic at it with symprop-load, and asserts the whole
# measurement pipeline end to end:
#
#   1. non-zero completions (-min-completed) against the live server;
#   2. a well-formed extended BENCH_*.json latency section and a
#      well-formed /metrics document, both validated by tools/obscheck;
#   3. benchguard accepts the produced snapshot against a pre-latency
#      baseline (the schema-compatibility contract), and the percentile
#      figure renders.
#
# Usage: scripts/load_smoke.sh [workdir]
set -euo pipefail

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
echo "load-smoke: working in $dir"

go build -o "$dir/symprop-serve" ./cmd/symprop-serve
go build -o "$dir/symprop-load" ./cmd/symprop-load
go build -o "$dir/obscheck" ./tools/obscheck
go build -o "$dir/benchguard" ./tools/benchguard

spool="$dir/spool"
rm -f "$dir/addr"
"$dir/symprop-serve" serve -spool "$spool" -addr 127.0.0.1:0 \
    -addr-file "$dir/addr" -runners 2 -mem off \
    >"$dir/server.log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [[ -s "$dir/addr" ]] && break
    sleep 0.1
done
if [[ ! -s "$dir/addr" ]]; then
    echo "load-smoke: FAIL — server never wrote its address" >&2
    cat "$dir/server.log" >&2
    exit 1
fi
server_url="http://$(cat "$dir/addr")"
echo "load-smoke: server up at $server_url (pid $server_pid)"

# A date far in the future so the produced snapshot sorts as head against
# the pre-latency baseline placed next to it.
snapdir="$dir/snapshots"
mkdir -p "$snapdir" "$dir/figures"
snap="$snapdir/BENCH_2099-01-01.json"

"$dir/symprop-load" -server "$server_url" \
    -mix smoke -rate 15 -duration 5s -seed 1 \
    -min-completed 10 \
    -bench-out "$snap" \
    -metrics-out "$dir/metrics.json" \
    -svgdir "$dir/figures" \
    | tee "$dir/load.out"

echo "load-smoke: validating artifacts"
"$dir/obscheck" -bench "$snap" -serve-metrics "$dir/metrics.json"

# The guard must accept a latency-bearing head over a pre-latency
# baseline: the ns/op benchmarks vanished from head (symprop-load does
# not run them), which is exactly what -allow-removed is for here, and
# the latency section must engage without tripping on the old file. The
# fixture's num_cpu is rewritten to match the head snapshot so the guard
# actually compares instead of skipping on a cpu-count change.
ncpu=$(sed -n 's/.*"num_cpu": \([0-9]*\).*/\1/p' "$snap" | head -1)
sed "s/\"num_cpu\": 8/\"num_cpu\": ${ncpu:-8}/" \
    tools/benchguard/testdata/prelatency/BENCH_2026-01-10.json \
    > "$snapdir/BENCH_2026-01-10.json"
"$dir/benchguard" -dir "$snapdir" -allow-removed

if ! ls "$dir"/figures/load_latency_*.svg >/dev/null 2>&1; then
    echo "load-smoke: FAIL — no percentile-over-time figure rendered" >&2
    exit 1
fi

# Graceful stop: drain and expect exit 0.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
trap - EXIT
if [[ $rc -ne 0 ]]; then
    echo "load-smoke: FAIL — server exited $rc on SIGTERM (want 0)" >&2
    cat "$dir/server.log" >&2
    exit 1
fi

echo "load-smoke: PASS"
