#!/usr/bin/env bash
# serve_smoke.sh — end-to-end crash-resume smoke test for symprop-serve.
#
# Exercises the job server's whole failure model through real processes
# and real signals (the lifecycle unit tests can't reach SIGKILL):
#
#   1. SIGKILL mid-job, restart over the same spool: the job resumes from
#      its checkpoint and the resumed factor matrix is BIT-IDENTICAL to an
#      uninterrupted control run of the same spec.
#   2. SIGTERM drain: the server stops admission, snapshots the running
#      job back to the queue, and exits 0; yet another restart completes
#      the drained job. No job is ever lost.
#
# Usage: scripts/serve_smoke.sh [workdir]
set -euo pipefail

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
echo "serve-smoke: working in $dir"

go build -o "$dir/symprop-serve" ./cmd/symprop-serve
go build -o "$dir/symprop-gen" ./cmd/symprop-gen

# Big enough that 40 HOOI iterations take several seconds — the SIGKILL
# below must land mid-run (same sizing as resume_smoke.sh).
"$dir/symprop-gen" random -order 3 -dim 400 -nnz 60000 -seed 11 -out "$dir/x.tns"

spool="$dir/spool"
# -shards 2 routes the kernels through the shard map: the kill → restart
# → resume chain below then also proves a sharded job resumes
# bit-identically with its shard count pinned in the manifest.
submit_args=(-rank 8 -algo hooi -iters 40 -tol 0 -seed 7 -workers 2 -shards 2 -checkpoint-every 1)

start_server() { # start_server <tag> -> sets server_pid, server_url
    local tag=$1
    rm -f "$dir/addr.$tag"
    "$dir/symprop-serve" serve -spool "$spool" -addr 127.0.0.1:0 \
        -addr-file "$dir/addr.$tag" -runners 1 -mem off \
        >"$dir/server.$tag.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$dir/addr.$tag" ]] && break
        sleep 0.1
    done
    if [[ ! -s "$dir/addr.$tag" ]]; then
        echo "serve-smoke: FAIL — server $tag never wrote its address" >&2
        cat "$dir/server.$tag.log" >&2
        exit 1
    fi
    server_url="http://$(cat "$dir/addr.$tag")"
    echo "serve-smoke: server $tag up at $server_url (pid $server_pid)"
}

# wait_status <id> <pattern> <tries>: poll until the status JSON matches.
wait_status() {
    local id=$1 pattern=$2 tries=$3
    for _ in $(seq 1 "$tries"); do
        if "$dir/symprop-serve" status -server "$server_url" "$id" 2>/dev/null \
            | grep -q "$pattern"; then
            return 0
        fi
        sleep 0.2
    done
    echo "serve-smoke: FAIL — job $id never matched '$pattern'; last status:" >&2
    "$dir/symprop-serve" status -server "$server_url" "$id" >&2 || true
    return 1
}

echo "serve-smoke: phase 1 — SIGKILL mid-job, restart, bit-identical resume"
start_server a
job=$("$dir/symprop-serve" submit -server "$server_url" "${submit_args[@]}" "$dir/x.tns")
echo "serve-smoke: submitted $job"
# Wait until the run has produced at least one resumable snapshot, so the
# kill below genuinely tests resume (not a from-scratch rerun).
wait_status "$job" '"checkpointed": true' 150
wait_status "$job" '"state": "running"' 50 || {
    echo "serve-smoke: job finished before the kill; resume degenerates to a restart check" >&2
}
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "serve-smoke: server a killed with SIGKILL mid-run"

start_server b
wait_status "$job" '"state": "succeeded"' 300
"$dir/symprop-serve" result -server "$server_url" -out "$dir/resumed.txt" "$job"

control=$("$dir/symprop-serve" submit -server "$server_url" "${submit_args[@]}" -wait "$dir/x.tns")
"$dir/symprop-serve" result -server "$server_url" -out "$dir/control.txt" "$control"
if cmp -s "$dir/resumed.txt" "$dir/control.txt"; then
    echo "serve-smoke: PASS — resumed factor is bit-identical to the control run"
else
    echo "serve-smoke: FAIL — resumed factor differs from control:" >&2
    diff "$dir/resumed.txt" "$dir/control.txt" | head >&2 || true
    exit 1
fi

echo "serve-smoke: phase 2 — SIGTERM drain exits 0, drained job survives"
job2=$("$dir/symprop-serve" submit -server "$server_url" "${submit_args[@]}" "$dir/x.tns")
wait_status "$job2" '"checkpointed": true' 150
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
if [[ $rc -ne 0 ]]; then
    echo "serve-smoke: FAIL — drained server exited $rc (want 0)" >&2
    cat "$dir/server.b.log" >&2
    exit 1
fi
echo "serve-smoke: server b drained and exited 0"

start_server c
wait_status "$job2" '"state": "succeeded"' 300
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
if [[ $rc -ne 0 ]]; then
    echo "serve-smoke: FAIL — idle server exited $rc on SIGTERM (want 0)" >&2
    exit 1
fi

echo "serve-smoke: PASS"
