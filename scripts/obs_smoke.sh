#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Runs a tiny decomposition through the real CLI with -metrics and -trace,
# then validates both artifacts with tools/obscheck: the per-plan counter
# schema, the registered plan-name set, and one trace event per sweep.
# Repeats for HOOI (s3ttmc plans) and HOQRI, and checks that a HOOI run
# with all observability flags off still works (the disarmed path).
#
# Usage: scripts/obs_smoke.sh [workdir]
set -euo pipefail

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
echo "obs-smoke: working in $dir"

go build -o "$dir/symprop" ./cmd/symprop
go build -o "$dir/symprop-gen" ./cmd/symprop-gen
go build -o "$dir/obscheck" ./tools/obscheck

"$dir/symprop-gen" random -order 3 -dim 80 -nnz 800 -seed 5 -out "$dir/x.tns"

iters=6
for algo in hooi hoqri; do
    echo "obs-smoke: $algo with -metrics/-trace"
    "$dir/symprop" decompose -rank 4 -algo "$algo" -iters $iters -tol 0 -seed 3 -workers 2 \
        -metrics "$dir/$algo.metrics.json" -trace "$dir/$algo.trace.jsonl" "$dir/x.tns"
    "$dir/obscheck" -metrics "$dir/$algo.metrics.json" -trace "$dir/$algo.trace.jsonl" -sweeps $iters
done

echo "obs-smoke: disarmed run (no observability flags)"
"$dir/symprop" decompose -rank 4 -algo hooi -iters $iters -tol 0 -seed 3 -workers 2 "$dir/x.tns" >/dev/null

echo "obs-smoke: PASS"
